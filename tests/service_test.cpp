// Tests for the layout-optimization service (DESIGN.md §12): wire-protocol
// round-trips and hostile-stream hardening, the bounded-LRU response cache,
// admission control / prioritization / graceful shutdown on an injected
// gated executor, and the golden round-trip — jobs driven through a real
// unix socket answer byte-identically to the in-process engine.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/options.hpp"
#include "json_lint.hpp"
#include "perfmodel/scheduler.hpp"
#include "prom_lint.hpp"
#include "service/cache.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "support/check.hpp"
#include "support/trace_recorder.hpp"

namespace codelayout::service {
namespace {

JobRequest solo_request(std::string workload,
                        std::optional<Optimizer> optimizer, Measure measure,
                        std::uint64_t id = 1) {
  JobRequest request;
  request.id = id;
  request.kind = JobKind::kSolo;
  request.workload = std::move(workload);
  request.optimizer = optimizer;
  request.measure = measure;
  return request;
}

Trace synthetic_trace() {
  Trace trace{Trace::Granularity::kBlock};
  for (std::uint32_t i = 0; i < 64; ++i) trace.push_run(i % 7, 1 + i % 5);
  return trace;
}

// ---- Protocol ---------------------------------------------------------------

TEST(ServiceProtocol, RequestRoundTripsEveryKind) {
  std::vector<JobRequest> requests;
  requests.push_back(solo_request("429.mcf", kBBAffinity, Measure::kHardware,
                                  42));
  requests.push_back(solo_request("458.sjeng", std::nullopt,
                                  Measure::kSimulator, 7));

  JobRequest layout;
  layout.id = 3;
  layout.priority = JobPriority::kInteractive;
  layout.kind = JobKind::kLayout;
  layout.workload = "429.mcf";
  layout.optimizer = kFuncTrg;
  requests.push_back(layout);

  JobRequest corun;
  corun.id = ~std::uint64_t{0};  // varint edge: all 64 bits set
  corun.priority = JobPriority::kBatch;
  corun.kind = JobKind::kCorun;
  corun.measure = Measure::kHardware;
  corun.cpi_speeds = false;
  corun.parties.push_back({"429.mcf", kBBAffinity, 1.0});
  corun.parties.push_back({"458.sjeng", std::nullopt, 1.25});
  corun.parties.push_back({"403.gcc", kFuncAffinity, 0.5});
  requests.push_back(corun);

  JobRequest stats;
  stats.id = 9;
  stats.kind = JobKind::kTraceStats;
  stats.trace = synthetic_trace();
  requests.push_back(stats);

  for (const JobRequest& request : requests) {
    const std::string payload = encode_request_payload(request);
    const JobRequest decoded = decode_request_payload(payload);
    EXPECT_EQ(decoded, request) << request.to_string();
  }
}

TEST(ServiceProtocol, ResponseRoundTrips) {
  JobResponse response;
  response.id = 77;
  response.status = JobStatus::kOk;
  SimResult r;
  r.instructions = 123456789;
  r.overhead_instructions = 42;
  r.line_probes = 999;
  r.demand_misses = 1234;
  r.wrong_path_misses = 5;
  r.blocks = 777;
  response.results = {r, SimResult{}};
  response.layout = {1000, 64000, 512, 33, 0xdeadbeefcafef00dull};
  response.trace_stats = {5000, 1200, 97, 0x1234567890abcdefull};

  const JobResponse decoded =
      decode_response_payload(encode_response_payload(response));
  EXPECT_EQ(decoded, response);

  JobResponse error;
  error.id = 1;
  error.status = JobStatus::kRejected;
  error.error = "job queue is full (depth 4)";
  EXPECT_EQ(decode_response_payload(encode_response_payload(error)), error);
}

TEST(ServiceProtocol, CanonicalKeyNormalizesIdAndPriority) {
  JobRequest a = solo_request("429.mcf", kBBAffinity, Measure::kHardware, 1);
  JobRequest b = solo_request("429.mcf", kBBAffinity, Measure::kHardware, 999);
  a.priority = JobPriority::kBatch;
  b.priority = JobPriority::kInteractive;
  EXPECT_EQ(a.canonical_key(), b.canonical_key());

  const JobRequest c =
      solo_request("429.mcf", kBBAffinity, Measure::kSimulator, 1);
  EXPECT_NE(a.canonical_key(), c.canonical_key());
}

TEST(ServiceProtocol, FrameHeaderRoundTrips) {
  FrameHeader header;
  header.type = FrameType::kResponse;
  header.payload_len = 123456;
  char bytes[kFrameHeaderBytes];
  encode_frame_header(header, bytes);
  const FrameHeader decoded = decode_frame_header(bytes);
  EXPECT_EQ(decoded.version, kWireVersion);
  EXPECT_EQ(decoded.type, FrameType::kResponse);
  EXPECT_EQ(decoded.payload_len, 123456u);
}

TEST(ServiceProtocol, RejectsHostileFrames) {
  FrameHeader header;
  header.payload_len = 4;
  char good[kFrameHeaderBytes];
  encode_frame_header(header, good);

  char bad_magic[kFrameHeaderBytes];
  std::memcpy(bad_magic, good, sizeof(good));
  bad_magic[0] = 'X';
  EXPECT_THROW((void)decode_frame_header(bad_magic), ContractError);

  char bad_version[kFrameHeaderBytes];
  std::memcpy(bad_version, good, sizeof(good));
  bad_version[4] = 99;
  EXPECT_THROW((void)decode_frame_header(bad_version), ContractError);

  char bad_type[kFrameHeaderBytes];
  std::memcpy(bad_type, good, sizeof(good));
  bad_type[6] = 9;
  EXPECT_THROW((void)decode_frame_header(bad_type), ContractError);

  char huge_payload[kFrameHeaderBytes];
  std::memcpy(huge_payload, good, sizeof(good));
  huge_payload[11] = 0x7f;  // payload_len > kMaxPayloadBytes
  EXPECT_THROW((void)decode_frame_header(huge_payload), ContractError);
}

TEST(ServiceProtocol, RejectsHostilePayloads) {
  const std::string payload = encode_request_payload(
      solo_request("429.mcf", kBBAffinity, Measure::kHardware));

  // Truncation at every length must throw, never read out of bounds.
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_THROW((void)decode_request_payload(payload.substr(0, len)),
                 ContractError)
        << "truncated to " << len;
  }
  // Trailing garbage.
  EXPECT_THROW((void)decode_request_payload(payload + "x"), ContractError);

  // Out-of-range enums: byte 1 is the priority, byte 2 the job kind.
  std::string bad_priority = payload;
  bad_priority[1] = 17;
  EXPECT_THROW((void)decode_request_payload(bad_priority), ContractError);
  std::string bad_kind = payload;
  bad_kind[2] = 17;
  EXPECT_THROW((void)decode_request_payload(bad_kind), ContractError);

  // A corrupt embedded trace blob must throw, not crash. Aim the bit flip
  // at the middle of the trace region: the payload ends with the v2
  // hierarchy blob (length prefix + encoding), the three v3 trailing bytes
  // (trace_id, span_id, introspect), and the two v5 trailing bytes (slots,
  // verify_top_k), which must be skipped or the flip may land in a latency
  // double and still decode cleanly.
  JobRequest stats;
  stats.kind = JobKind::kTraceStats;
  stats.trace = synthetic_trace();
  std::string stats_payload = encode_request_payload(stats);
  const std::size_t tail = stats.hierarchy.encode().size() + 1 + 3 + 2;
  ASSERT_GT(stats_payload.size(), tail);
  stats_payload[(stats_payload.size() - tail) / 2] ^= 0x5a;
  EXPECT_THROW((void)decode_request_payload(stats_payload), std::exception);
}

TEST(ServiceProtocol, HierarchyRoundTripsThroughRequestPayload) {
  JobRequest request = solo_request("429.mcf", kBBAffinity, Measure::kHardware);
  request.hierarchy.l1 = CacheGeometry{16 * 1024, 2, 64};
  request.hierarchy.l2 = CacheGeometry{256 * 1024, 8, 64};
  request.hierarchy.l2_hit_cycles = 9.0;
  request.hierarchy.memory_cycles = 41.0;

  const JobRequest decoded =
      decode_request_payload(encode_request_payload(request));
  EXPECT_EQ(decoded, request);
  EXPECT_EQ(decoded.hierarchy.to_string(), "16K/2/64+l2=256K/8/64");

  // The hierarchy is part of the job identity: a cached flat-L1 answer must
  // never be served for the same workload under a different geometry.
  const JobRequest flat =
      solo_request("429.mcf", kBBAffinity, Measure::kHardware);
  EXPECT_NE(request.canonical_key(), flat.canonical_key());

  // An invalid spec on the wire (L2 smaller than L1) must be rejected at
  // decode time, before any job touches the engine.
  JobRequest bad = request;
  bad.hierarchy.l2 = CacheGeometry{8 * 1024, 8, 64};
  EXPECT_THROW((void)decode_request_payload(encode_request_payload(bad)),
               ContractError);
}

TEST(ServiceProtocol, Version1PayloadsStillDecode) {
  // A v1 request lacks the trailing length-prefixed hierarchy blob (v2),
  // the trace-context tail (v3), and the co-schedule tail (v5). Decoding it
  // under version=1 must succeed and leave the paper-default spec in place.
  const JobRequest request =
      solo_request("429.mcf", kBBAffinity, Measure::kHardware, 11);
  std::string payload = encode_request_payload(request, /*version=*/1);
  // The versioned encoder and hand-truncation of the full encoding agree.
  std::string truncated = encode_request_payload(request);
  const std::size_t tail = request.hierarchy.encode().size() + 1 + 3 + 2;
  ASSERT_GT(truncated.size(), tail);
  truncated.resize(truncated.size() - tail);
  EXPECT_EQ(payload, truncated);
  const JobRequest decoded = decode_request_payload(payload, /*version=*/1);
  EXPECT_EQ(decoded, request);
  EXPECT_EQ(decoded.hierarchy, HierarchySpec{});
  // The same bytes under current framing are a truncated payload.
  EXPECT_THROW((void)decode_request_payload(payload), ContractError);

  // A v1 response lacks the two trailing per-result varints. Build one by
  // erasing them from a v2 encoding whose fields are all single-byte
  // varints: 4 header bytes + 6 result bytes put the l2 pair at offset 10.
  JobResponse response;
  response.id = 5;
  response.status = JobStatus::kOk;
  SimResult r;
  r.instructions = 100;
  r.overhead_instructions = 2;
  r.line_probes = 90;
  r.demand_misses = 7;
  r.wrong_path_misses = 1;
  r.blocks = 12;
  response.results = {r};
  std::string response_payload = encode_response_payload(response, 2);
  ASSERT_EQ(response_payload[10], '\0');  // l2_probes = 0
  ASSERT_EQ(response_payload[11], '\0');  // l2_misses = 0
  response_payload.erase(10, 2);
  const JobResponse decoded_response =
      decode_response_payload(response_payload, /*version=*/1);
  EXPECT_EQ(decoded_response, response);
  EXPECT_THROW((void)decode_response_payload(response_payload), ContractError);
}

TEST(ServiceProtocol, V4DispatchReceiptRoundTripsAndV3StaysByteIdentical) {
  // v4 appended dispatch_run/dispatch_flat varints and a run_compression
  // double to the CostReceipt tail. They must round-trip at v4, and the v3
  // encoding of the same response must be byte-identical to a v4 encoding
  // with the fields zeroed (i.e. strictly appended, version-gated).
  JobResponse response;
  response.id = 17;
  response.status = JobStatus::kOk;
  response.receipt.events = 4096;
  response.receipt.wall_nanos = 1234;
  response.receipt.dispatch_run = 5;
  response.receipt.dispatch_flat = 2;
  response.receipt.run_compression = 3.125;

  const std::string v4 = encode_response_payload(response, 4);
  const JobResponse decoded = decode_response_payload(v4, 4);
  EXPECT_EQ(decoded, response);
  EXPECT_EQ(decoded.receipt.dispatch_run, 5u);
  EXPECT_EQ(decoded.receipt.dispatch_flat, 2u);
  EXPECT_EQ(decoded.receipt.run_compression, 3.125);

  // A v3 response omits the v4 tail byte-for-byte: the v3 encoding equals
  // the v4 encoding of the same response with the dispatch fields cleared,
  // truncated by the appended tail (2 one-byte varints + an 8-byte double).
  const std::string v3 = encode_response_payload(response, 3);
  JobResponse cleared = response;
  cleared.receipt.dispatch_run = 0;
  cleared.receipt.dispatch_flat = 0;
  cleared.receipt.run_compression = 0.0;
  std::string v4_cleared = encode_response_payload(cleared, 4);
  ASSERT_GT(v4_cleared.size(), 10u);
  EXPECT_EQ(v3, v4_cleared.substr(0, v4_cleared.size() - 10));
  const JobResponse v3_decoded = decode_response_payload(v3, 3);
  EXPECT_EQ(v3_decoded.receipt.dispatch_run, 0u);
  EXPECT_EQ(v3_decoded.receipt.dispatch_flat, 0u);
  EXPECT_EQ(v3_decoded.receipt.run_compression, 0.0);

  // Truncating anywhere inside the v4 tail must throw, never half-decode.
  for (std::size_t cut = 1; cut <= 10; ++cut) {
    EXPECT_THROW(static_cast<void>(decode_response_payload(
                     std::string_view(v4).substr(0, v4.size() - cut), 4)),
                 ContractError)
        << "cut " << cut;
  }

  // The request payload is unchanged v3 -> v4, so cache keys were stable
  // across that version bump: a v4 request encoding equals the v3 one.
  const JobRequest request =
      solo_request("429.mcf", kBBAffinity, Measure::kHardware, 7);
  EXPECT_EQ(encode_request_payload(request, /*version=*/4),
            encode_request_payload(request, /*version=*/3));
}

TEST(ServiceProtocol, V5CoScheduleRoundTripsAndV4StaysByteIdentical) {
  // v5 appended the co-schedule request fields (slots, verify_top_k), the
  // CoScheduleResult response block, and the predictor receipt varints.
  JobRequest request;
  request.id = 31;
  request.kind = JobKind::kCoSchedule;
  request.parties.push_back({"429.mcf", kBBAffinity, 1.0});
  request.parties.push_back({"458.sjeng", std::nullopt, 1.0});
  request.parties.push_back({"403.gcc", kFuncAffinity, 1.0});
  request.slots = 2;
  request.verify_top_k = 1;
  const JobRequest decoded =
      decode_request_payload(encode_request_payload(request));
  EXPECT_EQ(decoded, request);
  EXPECT_EQ(decoded.slots, 2u);
  EXPECT_EQ(decoded.verify_top_k, 1u);

  // The problem shape is part of the job identity: the same pool under a
  // different slot count must never share a cache entry.
  JobRequest other_slots = request;
  other_slots.slots = 3;
  EXPECT_NE(request.canonical_key(), other_slots.canonical_key());

  // kCoSchedule is a v5 kind: the same bytes under a v4 header are hostile.
  EXPECT_THROW(
      static_cast<void>(decode_request_payload(
          encode_request_payload(request, /*version=*/4), /*version=*/4)),
      ContractError);

  // Response side: the schedule block rides the v5 tail and round-trips.
  JobResponse response;
  response.id = 31;
  response.status = JobStatus::kOk;
  response.schedule.pairs = {{0, 2, 1234.5}, {1, 3, 99.25}};
  response.schedule.unpaired = {4};
  response.schedule.predicted_total_misses = 1500.75;
  response.schedule.refine_passes = 2;
  response.schedule.verified = {0};
  response.receipt.predict_calls = 10;
  response.receipt.profile_memo_hits = 5;
  const std::string v5 = encode_response_payload(response);
  EXPECT_EQ(decode_response_payload(v5), response);

  // A v4 response omits the v5 tail byte-for-byte: the v4 encoding equals
  // the v5 encoding of the same response with the schedule and predictor
  // fields cleared, truncated by the empty v5 tail (two zero counts, an
  // 8-byte double, refine_passes, the verified count, and two predictor
  // varints — 14 bytes).
  const std::string v4 = encode_response_payload(response, 4);
  JobResponse cleared = response;
  cleared.schedule = CoScheduleResult{};
  cleared.receipt.predict_calls = 0;
  cleared.receipt.profile_memo_hits = 0;
  const std::string v5_cleared = encode_response_payload(cleared);
  ASSERT_GT(v5_cleared.size(), 14u);
  EXPECT_EQ(v4, v5_cleared.substr(0, v5_cleared.size() - 14));
  const JobResponse v4_decoded = decode_response_payload(v4, 4);
  EXPECT_EQ(v4_decoded.schedule, CoScheduleResult{});
  EXPECT_EQ(v4_decoded.receipt.predict_calls, 0u);
  EXPECT_EQ(v4_decoded.receipt.profile_memo_hits, 0u);

  // Truncating anywhere inside the v5 tail must throw, never half-decode.
  ASSERT_GT(v5.size(), v4.size());
  for (std::size_t cut = 1; cut <= v5.size() - v4.size(); ++cut) {
    EXPECT_THROW(static_cast<void>(decode_response_payload(
                     std::string_view(v5).substr(0, v5.size() - cut))),
                 ContractError)
        << "cut " << cut;
  }

  // A hostile pair count (> 64) must be rejected before any allocation of
  // that size. The pairs count byte is the first byte after the v4 prefix.
  std::string hostile = v5_cleared;
  hostile[v4.size()] = '\x41';  // claims 65 pairs
  EXPECT_THROW(static_cast<void>(decode_response_payload(hostile)),
               ContractError);
}

// ---- Response cache ---------------------------------------------------------

JobResponse canned_response(std::uint64_t marker) {
  JobResponse response;
  response.trace_stats.checksum = marker;
  return response;
}

TEST(ResponseCacheTest, HitsMissesAndLruEvictionByEntries) {
  ResponseCache cache(ResponseCache::Config{.max_entries = 2,
                                            .max_bytes = 1u << 20});
  EXPECT_FALSE(cache.lookup("a").has_value());
  cache.insert("a", canned_response(1));
  cache.insert("b", canned_response(2));
  ASSERT_TRUE(cache.lookup("a").has_value());  // refreshes "a"
  cache.insert("c", canned_response(3));       // evicts LRU "b"
  EXPECT_TRUE(cache.lookup("a").has_value());
  EXPECT_FALSE(cache.lookup("b").has_value());
  ASSERT_TRUE(cache.lookup("c").has_value());
  EXPECT_EQ(cache.lookup("c")->trace_stats.checksum, 3u);

  const ResponseCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
}

TEST(ResponseCacheTest, EvictsByByteBudget) {
  // Each entry costs key + encoded response (tens of bytes); a 200-byte
  // budget holds only a couple of entries.
  ResponseCache cache(ResponseCache::Config{.max_entries = 1000,
                                            .max_bytes = 200});
  for (int i = 0; i < 32; ++i) {
    cache.insert("key-" + std::to_string(i), canned_response(i));
  }
  const ResponseCache::Stats stats = cache.stats();
  EXPECT_LE(stats.bytes, 200u);
  EXPECT_LT(stats.entries, 32u);
  EXPECT_GT(stats.evictions, 0u);
  // The most recent insertion survives.
  EXPECT_TRUE(cache.lookup("key-31").has_value());
}

TEST(ResponseCacheTest, InsertRefreshesExistingKey) {
  ResponseCache cache(ResponseCache::Config{.max_entries = 8,
                                            .max_bytes = 1u << 20});
  cache.insert("k", canned_response(1));
  cache.insert("k", canned_response(2));
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.lookup("k")->trace_stats.checksum, 2u);
}

// ---- Server: admission, priorities, shutdown (gated executor) ---------------

/// Deterministic test executor: execute() blocks until open() so tests can
/// fill the queue, then records execution order.
class GatedExecutor : public JobExecutor {
 public:
  JobResponse execute(const JobRequest& request) override {
    std::unique_lock<std::mutex> lock(mu_);
    ++started_;
    started_cv_.notify_all();
    open_cv_.wait(lock, [this] { return open_; });
    order_.push_back(request.id);
    JobResponse response;
    response.id = request.id;
    response.trace_stats.checksum = request.id;  // deterministic payload
    return response;
  }

  void open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    open_cv_.notify_all();
  }

  /// Blocks until `n` execute() calls have started (i.e. are in-flight).
  void wait_started(std::size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    started_cv_.wait(lock, [&] { return started_ >= n; });
  }

  std::vector<std::uint64_t> order() {
    std::lock_guard<std::mutex> lock(mu_);
    return order_;
  }

 private:
  std::mutex mu_;
  std::condition_variable started_cv_;
  std::condition_variable open_cv_;
  std::size_t started_ = 0;
  bool open_ = false;
  std::vector<std::uint64_t> order_;
};

/// Collects delivered responses across threads.
class Deliveries {
 public:
  std::function<void(JobResponse)> sink() {
    return [this](JobResponse response) {
      std::lock_guard<std::mutex> lock(mu_);
      responses_.push_back(std::move(response));
    };
  }
  std::vector<JobResponse> all() {
    std::lock_guard<std::mutex> lock(mu_);
    return responses_;
  }

 private:
  std::mutex mu_;
  std::vector<JobResponse> responses_;
};

ServerConfig small_config(unsigned workers, std::size_t depth) {
  ServerConfig config;
  config.workers = workers;
  config.queue_depth = depth;
  config.cache_enabled = false;  // admission tests count every execution
  return config;
}

TEST(ServiceServer, BoundedQueueRejectsWhenFull) {
  auto executor = std::make_unique<GatedExecutor>();
  GatedExecutor& gate = *executor;
  ServiceServer server(small_config(1, 2), std::move(executor));
  Deliveries delivered;

  server.submit(solo_request("a", std::nullopt, Measure::kHardware, 1),
                delivered.sink());
  gate.wait_started(1);  // job 1 is in-flight; the queue is empty again
  server.submit(solo_request("b", std::nullopt, Measure::kHardware, 2),
                delivered.sink());
  server.submit(solo_request("c", std::nullopt, Measure::kHardware, 3),
                delivered.sink());
  // Depth 2 is exhausted: the fourth submission answers kRejected inline.
  server.submit(solo_request("d", std::nullopt, Measure::kHardware, 4),
                delivered.sink());

  auto rejected = delivered.all();
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_EQ(rejected[0].id, 4u);
  EXPECT_EQ(rejected[0].status, JobStatus::kRejected);
  EXPECT_NE(rejected[0].error.find("queue is full"), std::string::npos);

  gate.open();
  server.shutdown();
  const auto all = delivered.all();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(server.stats().rejected, 1u);
  EXPECT_EQ(server.stats().completed, 3u);
}

TEST(ServiceServer, HigherPriorityClassesRunFirst) {
  auto executor = std::make_unique<GatedExecutor>();
  GatedExecutor& gate = *executor;
  ServiceServer server(small_config(1, 16), std::move(executor));
  Deliveries delivered;

  auto submit = [&](std::uint64_t id, JobPriority priority) {
    JobRequest request = solo_request("w", std::nullopt, Measure::kHardware,
                                      id);
    request.priority = priority;
    server.submit(std::move(request), delivered.sink());
  };
  submit(1, JobPriority::kNormal);  // picked up immediately, blocks on gate
  gate.wait_started(1);
  submit(2, JobPriority::kBatch);
  submit(3, JobPriority::kBatch);
  submit(4, JobPriority::kNormal);
  submit(5, JobPriority::kInteractive);
  submit(6, JobPriority::kInteractive);

  gate.open();
  server.shutdown();
  // Interactive first (FIFO within the class), then normal, then batch.
  EXPECT_EQ(gate.order(),
            (std::vector<std::uint64_t>{1, 5, 6, 4, 2, 3}));
}

TEST(ServiceServer, GracefulShutdownDrainsQueuedAndInflightJobs) {
  auto executor = std::make_unique<GatedExecutor>();
  GatedExecutor& gate = *executor;
  ServiceServer server(small_config(2, 16), std::move(executor));
  Deliveries delivered;

  for (std::uint64_t id = 1; id <= 6; ++id) {
    server.submit(solo_request("w", std::nullopt, Measure::kHardware, id),
                  delivered.sink());
  }
  gate.wait_started(2);  // both workers hold in-flight jobs; four queued

  std::thread closer([&] { server.shutdown(); });
  gate.open();
  closer.join();

  // Every job — queued and in-flight — reached its deliver callback.
  const auto all = delivered.all();
  ASSERT_EQ(all.size(), 6u);
  for (const JobResponse& response : all) {
    EXPECT_EQ(response.status, JobStatus::kOk);
  }
  EXPECT_EQ(server.stats().completed, 6u);

  // After the drain, the server stays up but admits nothing.
  server.submit(solo_request("late", std::nullopt, Measure::kHardware, 99),
                delivered.sink());
  const auto late = delivered.all().back();
  EXPECT_EQ(late.id, 99u);
  EXPECT_EQ(late.status, JobStatus::kShuttingDown);
  EXPECT_EQ(server.stats().shutdown_rejected, 1u);
}

/// Counts executions; responses are a pure function of the request.
class CountingExecutor : public JobExecutor {
 public:
  JobResponse execute(const JobRequest& request) override {
    executed.fetch_add(1);
    JobResponse response;
    response.id = request.id;
    if (request.workload == "fails") {
      response.status = JobStatus::kError;
      response.error = "synthetic failure";
    } else {
      response.trace_stats.events = request.workload.size();
    }
    return response;
  }
  std::atomic<std::uint64_t> executed{0};
};

TEST(ServiceServer, ResponseCacheServesRepeatsAcrossRequests) {
  auto executor = std::make_unique<CountingExecutor>();
  CountingExecutor& counter = *executor;
  ServerConfig config;
  config.workers = 1;
  ServiceServer server(config, std::move(executor));

  const JobResponse first =
      server.call(solo_request("429.mcf", kBBAffinity, Measure::kHardware, 1));
  // Same work, different id and priority: served from cache, id re-stamped.
  JobRequest repeat =
      solo_request("429.mcf", kBBAffinity, Measure::kHardware, 2);
  repeat.priority = JobPriority::kInteractive;
  const JobResponse second = server.call(repeat);

  EXPECT_EQ(counter.executed.load(), 1u);
  EXPECT_EQ(first.id, 1u);
  EXPECT_EQ(second.id, 2u);
  EXPECT_EQ(first.trace_stats.events, second.trace_stats.events);
  server.shutdown();
  EXPECT_EQ(server.stats().cache_hits, 1u);
}

TEST(ServiceServer, ErrorResponsesAreNotCached) {
  auto executor = std::make_unique<CountingExecutor>();
  CountingExecutor& counter = *executor;
  ServerConfig config;
  config.workers = 1;
  ServiceServer server(config, std::move(executor));

  const JobRequest bad = solo_request("fails", std::nullopt,
                                      Measure::kHardware, 1);
  EXPECT_EQ(server.call(bad).status, JobStatus::kError);
  EXPECT_EQ(server.call(bad).status, JobStatus::kError);
  EXPECT_EQ(counter.executed.load(), 2u);
}

TEST(ServiceServer, SubmitRacingShutdownAlwaysDelivers) {
  // Regression: submit() drops the server lock for the cache lookup between
  // the draining_ check and the enqueue. If shutdown() lands in that window
  // the job must answer kShuttingDown inline — never sit in a queue no
  // worker will read, which wedged call() and shutdown() forever.
  constexpr int kRounds = 32;
  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 8;
  for (int round = 0; round < kRounds; ++round) {
    ServerConfig config;
    config.workers = 2;
    config.queue_depth = 64;
    config.cache_enabled = true;  // the lock-free lookup opens the window
    ServiceServer server(config, std::make_unique<CountingExecutor>());
    Deliveries delivered;

    std::vector<std::thread> submitters;
    submitters.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&, t] {
        // Pre-built name: keeps GCC 12's -Wrestrict checker away from the
        // inlined char*+string concatenation it misdiagnoses at -O2.
        std::string workload = "w";
        workload += std::to_string(t % 2);
        for (int j = 0; j < kJobsPerThread; ++j) {
          server.submit(
              solo_request(workload, std::nullopt, Measure::kHardware,
                           static_cast<std::uint64_t>(t * 100 + j + 1)),
              delivered.sink());
        }
      });
    }
    server.shutdown();  // races the submitters
    for (std::thread& submitter : submitters) submitter.join();

    // Every submit reached its deliver callback exactly once: admitted jobs
    // were drained by shutdown(), late ones answered kShuttingDown inline.
    EXPECT_EQ(delivered.all().size(),
              static_cast<std::size_t>(kThreads * kJobsPerThread));
  }
}

TEST(ServiceSocket, SecondListenIsRefusedAndLeavesTheFirstAlive) {
  ServerConfig config;
  config.workers = 1;
  ServiceServer server(config, std::make_unique<CountingExecutor>());
  server.listen_unix("svc_double.sock");
  // A second listen must refuse up front — not unlink/rebind the live
  // socket, not leak a fresh fd.
  EXPECT_THROW(server.listen_unix("svc_double_b.sock"), ContractError);
  EXPECT_EQ(server.socket_path(), "svc_double.sock");

  ServiceClient client = ServiceClient::connect_unix("svc_double.sock");
  const JobResponse response =
      client.call(solo_request("w", std::nullopt, Measure::kHardware, 5));
  EXPECT_EQ(response.id, 5u);
  EXPECT_EQ(response.status, JobStatus::kOk);
  server.shutdown();
}

// ---- Socket round-trip: byte-identity with the in-process engine ------------

TEST(ServiceSocket, GoldenRoundTripIsByteIdenticalToInProcess) {
  const LabOptions options = LabOptions{}.threads(2);
  ServerConfig config;
  config.workers = 2;
  ServiceServer server(config, std::make_unique<LabExecutor>(options));
  const std::string socket_path = "svc_golden.sock";
  server.listen_unix(socket_path);
  ServiceClient client = ServiceClient::connect_unix(socket_path);

  // The in-process reference: the same job mapping over a local Lab.
  LabExecutor local(options);

  std::vector<JobRequest> jobs;
  jobs.push_back(solo_request("429.mcf", std::nullopt, Measure::kHardware));
  jobs.push_back(solo_request("429.mcf", kBBAffinity, Measure::kHardware));
  jobs.push_back(solo_request("458.sjeng", kFuncAffinity,
                              Measure::kSimulator));

  JobRequest layout;
  layout.kind = JobKind::kLayout;
  layout.workload = "458.sjeng";
  layout.optimizer = kBBAffinity;
  jobs.push_back(layout);

  JobRequest corun;
  corun.kind = JobKind::kCorun;
  corun.measure = Measure::kHardware;
  corun.parties.push_back({"429.mcf", kBBAffinity, 1.0});
  corun.parties.push_back({"458.sjeng", std::nullopt, 1.0});
  jobs.push_back(corun);

  JobRequest stats;
  stats.kind = JobKind::kTraceStats;
  stats.trace = synthetic_trace();
  jobs.push_back(stats);

  // A failing job travels the same path and fails alone.
  jobs.push_back(solo_request("no.such-benchmark", std::nullopt,
                              Measure::kHardware));

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = i + 1;
    // Pin the trace context so the receipt's byte count stays deterministic
    // under CODELAYOUT_TRACE=1 (the client assigns ids only when unset).
    jobs[i].trace_id = i + 1;
    jobs[i].span_id = 1;
    const JobResponse remote = client.call(jobs[i]);
    const JobResponse expected = local.execute(jobs[i]);
    // Byte-identical on the wire, not merely approximately equal. Compared
    // in the v2 encoding: the v3 CostReceipt carries wall-clock timings,
    // which are real per-call data, not determinism violations.
    EXPECT_EQ(encode_response_payload(remote, 2),
              encode_response_payload(expected, 2))
        << jobs[i].to_string();
    JobResponse remote_core = remote;
    JobResponse expected_core = expected;
    remote_core.receipt = CostReceipt{};
    expected_core.receipt = CostReceipt{};
    EXPECT_EQ(remote_core, expected_core) << jobs[i].to_string();
    // The receipt's simulated-work counts must match the SimResults they
    // ride with (the acceptance contract for per-job cost attribution).
    if (remote.status == JobStatus::kOk) {
      std::uint64_t events = 0;
      std::uint64_t probes = 0;
      std::uint64_t l2 = 0;
      for (const SimResult& r : remote.results) {
        events += r.instructions + r.overhead_instructions;
        probes += r.line_probes;
        l2 += r.l2_probes;
      }
      EXPECT_EQ(remote.receipt.events, events) << jobs[i].to_string();
      EXPECT_EQ(remote.receipt.cache_probes, probes) << jobs[i].to_string();
      EXPECT_EQ(remote.receipt.l2_probes, l2) << jobs[i].to_string();
      EXPECT_EQ(remote.receipt.bytes_decoded,
                encode_request_payload(jobs[i]).size())
          << jobs[i].to_string();
    }
  }

  // Spot-check against the Lab directly: the service path reports exactly
  // what in-process evaluation computes.
  Lab direct(LabOptions{}.threads(2));
  const JobResponse solo_remote = client.call(jobs[1]);
  EXPECT_EQ(solo_remote.results.size(), 1u);
  EXPECT_EQ(solo_remote.results[0],
            direct.solo("429.mcf", kBBAffinity, Measure::kHardware));
  const JobResponse corun_remote = client.call(jobs[4]);
  const CorunResult& corun_direct = direct.corun(
      "429.mcf", kBBAffinity, "458.sjeng", std::nullopt, Measure::kHardware);
  ASSERT_EQ(corun_remote.results.size(), 2u);
  EXPECT_EQ(corun_remote.results[0], corun_direct.self);
  EXPECT_EQ(corun_remote.results[1], corun_direct.peer);

  server.shutdown();
}

TEST(ServiceSocket, NonDefaultHierarchyRoundTripsOverTheWire) {
  const LabOptions options = LabOptions{}.threads(2);
  ServerConfig config;
  config.workers = 2;
  ServiceServer server(config, std::make_unique<LabExecutor>(options));
  const std::string socket_path = "svc_hier.sock";
  server.listen_unix(socket_path);
  ServiceClient client = ServiceClient::connect_unix(socket_path);

  // A small L1 so the workload spills: L2 then absorbs conflict misses and
  // the per-level split is visible (strictly fewer L2 misses than probes).
  HierarchySpec spec;
  spec.l1 = CacheGeometry{4 * 1024, 2, 64};
  spec.l2 = CacheGeometry{256 * 1024, 8, 64};

  JobRequest solo = solo_request("429.mcf", kBBAffinity, Measure::kHardware);
  solo.hierarchy = spec;
  const JobResponse solo_remote = client.call(solo);
  ASSERT_EQ(solo_remote.status, JobStatus::kOk) << solo_remote.error;
  ASSERT_EQ(solo_remote.results.size(), 1u);
  // The L2 actually engaged, and the per-level counters survived the wire.
  EXPECT_GT(solo_remote.results[0].l2_probes, 0u);
  EXPECT_EQ(solo_remote.results[0].l2_probes,
            solo_remote.results[0].demand_misses);
  EXPECT_LT(solo_remote.results[0].l2_misses,
            solo_remote.results[0].l2_probes);

  Lab direct(LabOptions{}.threads(2));
  EXPECT_EQ(solo_remote.results[0],
            direct.solo("429.mcf", kBBAffinity, Measure::kHardware, spec));

  JobRequest corun;
  corun.id = 2;
  corun.kind = JobKind::kCorun;
  corun.measure = Measure::kHardware;
  corun.hierarchy = spec;
  corun.parties.push_back({"429.mcf", kBBAffinity, 1.0});
  corun.parties.push_back({"458.sjeng", std::nullopt, 1.0});
  const JobResponse corun_remote = client.call(corun);
  ASSERT_EQ(corun_remote.status, JobStatus::kOk) << corun_remote.error;
  const CorunResult& corun_direct =
      direct.corun("429.mcf", kBBAffinity, "458.sjeng", std::nullopt,
                   Measure::kHardware, spec);
  ASSERT_EQ(corun_remote.results.size(), 2u);
  EXPECT_EQ(corun_remote.results[0], corun_direct.self);
  EXPECT_EQ(corun_remote.results[1], corun_direct.peer);
  EXPECT_GT(corun_remote.results[0].l2_probes, 0u);

  server.shutdown();
}

TEST(ServiceSocket, CoScheduleGoldenMatchesInProcessScheduler) {
  const LabOptions options = LabOptions{}.threads(2);
  ServerConfig config;
  config.workers = 2;
  ServiceServer server(config, std::make_unique<LabExecutor>(options));
  const std::string socket_path = "svc_cosched.sock";
  server.listen_unix(socket_path);
  ServiceClient client = ServiceClient::connect_unix(socket_path);

  JobRequest job;
  job.id = 1;
  job.kind = JobKind::kCoSchedule;
  job.measure = Measure::kSimulator;
  job.parties.push_back({"458.sjeng", std::nullopt, 1.0});
  job.parties.push_back({"471.omnetpp", std::nullopt, 1.0});
  job.parties.push_back({"403.gcc", kBBAffinity, 1.0});
  job.slots = 2;
  job.verify_top_k = 1;
  job.trace_id = 1;
  job.span_id = 1;

  const JobResponse remote = client.call(job);
  ASSERT_EQ(remote.status, JobStatus::kOk) << remote.error;

  // Byte-identical to the in-process executor on the wire. The receipt
  // carries per-call timings and the daemon-side predictor attribution, so
  // it is zeroed on both sides before encoding.
  LabExecutor local(options);
  const JobResponse expected = local.execute(job);
  JobResponse remote_wire = remote;
  JobResponse expected_wire = expected;
  remote_wire.receipt = CostReceipt{};
  expected_wire.receipt = CostReceipt{};
  EXPECT_EQ(encode_response_payload(remote_wire),
            encode_response_payload(expected_wire));
  EXPECT_EQ(remote_wire, expected_wire);

  // The daemon attributed the closed-form work: one prediction per pair of
  // the 3-party pool, none served from a profile memo the first time.
  EXPECT_EQ(remote.receipt.predict_calls, 3u);

  // The assignment matches the scheduler run directly on the Lab's memoized
  // profiles — the service adds transport, not policy.
  Lab direct(LabOptions{}.threads(2));
  std::vector<const SoloProfile*> profiles;
  profiles.reserve(job.parties.size());
  for (const CorunPartyRequest& party : job.parties) {
    profiles.push_back(&direct.solo_profile(party.workload, party.optimizer,
                                            job.hierarchy.l1.line_bytes));
  }
  const PairCostMatrix costs =
      compute_pair_costs(profiles, job.hierarchy, direct.perf());
  const ScheduleResult schedule = schedule_corun(costs, job.slots);
  ASSERT_EQ(remote.schedule.pairs.size(), schedule.pairs.size());
  for (std::size_t i = 0; i < schedule.pairs.size(); ++i) {
    EXPECT_EQ(remote.schedule.pairs[i].a, schedule.pairs[i].a);
    EXPECT_EQ(remote.schedule.pairs[i].b, schedule.pairs[i].b);
    EXPECT_EQ(remote.schedule.pairs[i].predicted_misses,
              schedule.pairs[i].predicted_misses);
  }
  EXPECT_EQ(remote.schedule.predicted_total_misses,
            schedule.predicted_total_misses);
  EXPECT_EQ(remote.schedule.refine_passes, schedule.refine_passes);

  // 3 parties on 2 slots force exactly one pair; its bit-exact verification
  // rides results[] both directions and matches Lab::corun exactly.
  ASSERT_EQ(remote.schedule.pairs.size(), 1u);
  ASSERT_EQ(remote.schedule.verified.size(), 1u);
  ASSERT_EQ(remote.results.size(), 2u);
  const SchedulePair& pair = schedule.pairs[remote.schedule.verified[0]];
  const CorunPartyRequest& a = job.parties[pair.a];
  const CorunPartyRequest& b = job.parties[pair.b];
  const CorunResult& ab =
      direct.corun(a.workload, a.optimizer, b.workload, b.optimizer,
                   job.measure, job.hierarchy);
  const CorunResult& ba =
      direct.corun(b.workload, b.optimizer, a.workload, a.optimizer,
                   job.measure, job.hierarchy);
  EXPECT_EQ(remote.results[0], ab.self);
  EXPECT_EQ(remote.results[1], ba.self);

  // Infeasible instances (5 parties cannot fit 2 slots... here 3 parties on
  // 1 slot) answer kError with the scheduler's contract text, not a hangup.
  JobRequest infeasible = job;
  infeasible.id = 2;
  infeasible.slots = 1;
  const JobResponse error = client.call(infeasible);
  EXPECT_EQ(error.status, JobStatus::kError);
  EXPECT_FALSE(error.error.empty());

  // Bad pools are rejected before any profile work.
  JobRequest empty_pool = job;
  empty_pool.id = 3;
  empty_pool.parties.clear();
  EXPECT_EQ(client.call(empty_pool).status, JobStatus::kError);
  JobRequest zero_slots = job;
  zero_slots.id = 4;
  zero_slots.slots = 0;
  EXPECT_EQ(client.call(zero_slots).status, JobStatus::kError);

  server.shutdown();
}

TEST(ServiceSocket, GarbageFramesGetAnErrorResponseAndHangup) {
  ServerConfig config;
  config.workers = 1;
  ServiceServer server(config, std::make_unique<CountingExecutor>());
  const std::string socket_path = "svc_garbage.sock";
  server.listen_unix(socket_path);

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  const char garbage[kFrameHeaderBytes] = "NOTAFRAME!!";
  ASSERT_EQ(::send(fd, garbage, sizeof(garbage), 0),
            static_cast<ssize_t>(sizeof(garbage)));

  char header_bytes[kFrameHeaderBytes];
  std::size_t got = 0;
  while (got < sizeof(header_bytes)) {
    const ssize_t r =
        ::recv(fd, header_bytes + got, sizeof(header_bytes) - got, 0);
    ASSERT_GT(r, 0);
    got += static_cast<std::size_t>(r);
  }
  const FrameHeader header = decode_frame_header(header_bytes);
  EXPECT_EQ(header.type, FrameType::kResponse);
  std::string payload(header.payload_len, '\0');
  got = 0;
  while (got < payload.size()) {
    const ssize_t r = ::recv(fd, payload.data() + got, payload.size() - got, 0);
    ASSERT_GT(r, 0);
    got += static_cast<std::size_t>(r);
  }
  const JobResponse response = decode_response_payload(payload);
  EXPECT_EQ(response.status, JobStatus::kError);
  EXPECT_FALSE(response.error.empty());

  // The server hangs up after a protocol error.
  char byte;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
  server.shutdown();
}

// ---- Observability: v3 tail hardening, introspection, trace context ---------

TEST(ServiceProtocol, TraceContextDoesNotPerturbTheCanonicalKey) {
  JobRequest plain = solo_request("429.mcf", kBBAffinity, Measure::kHardware);
  JobRequest traced = plain;
  traced.trace_id = 0xdeadbeefcafef00dull;
  traced.span_id = 17;
  // Tracing is observability, never identity: a traced request must hit the
  // same cache entry as an untraced one.
  EXPECT_EQ(plain.canonical_key(), traced.canonical_key());
}

TEST(ServiceProtocol, IntrospectRequestsRoundTripEveryKind) {
  for (const IntrospectKind kind :
       {IntrospectKind::kStats, IntrospectKind::kHealth,
        IntrospectKind::kMetricsJson, IntrospectKind::kPrometheus,
        IntrospectKind::kRecentJobs, IntrospectKind::kTraceExport}) {
    JobRequest request;
    request.id = 77;
    request.kind = JobKind::kIntrospect;
    request.introspect = kind;
    request.trace_id = 5;
    request.span_id = 2;
    const JobRequest decoded =
        decode_request_payload(encode_request_payload(request));
    EXPECT_EQ(decoded, request) << introspect_kind_name(kind);
  }
}

TEST(ServiceProtocol, RejectsHostileV3Tails) {
  JobRequest request = solo_request("429.mcf", kBBAffinity,
                                    Measure::kHardware, 9);
  request.trace_id = 1234567;
  request.span_id = 3;
  const std::string payload = encode_request_payload(request);

  // Truncating anywhere inside the v3 tail (trace varint, span varint,
  // introspect byte) must throw, never decode half a context.
  for (std::size_t cut = 1; cut <= 5 && cut < payload.size(); ++cut) {
    EXPECT_THROW(static_cast<void>(decode_request_payload(
                     std::string_view(payload).substr(0, payload.size() - cut))),
                 ContractError)
        << "cut " << cut;
  }

  // Introspect byte out of range (it sits before the two v5 tail bytes).
  std::string bad_introspect = payload;
  bad_introspect[bad_introspect.size() - 3] = '\x66';
  EXPECT_THROW(static_cast<void>(decode_request_payload(bad_introspect)),
               ContractError);

  // kIntrospect is a v3 kind: the same bytes under a v2 header are hostile.
  JobRequest introspect;
  introspect.kind = JobKind::kIntrospect;
  const std::string v3_only = encode_request_payload(introspect);
  EXPECT_THROW(static_cast<void>(decode_request_payload(v3_only, 2)),
               ContractError);

  // Response side: truncated receipt and a cached flag that is not 0/1.
  JobResponse response;
  response.id = 9;
  response.receipt.events = 1000;
  response.receipt.wall_nanos = 500;
  const std::string rpayload = encode_response_payload(response);
  for (std::size_t cut = 1; cut <= 4; ++cut) {
    EXPECT_THROW(
        static_cast<void>(decode_response_payload(
            std::string_view(rpayload).substr(0, rpayload.size() - cut))),
        ContractError)
        << "cut " << cut;
  }
  JobResponse flagged;
  flagged.receipt.cached = true;
  std::string bad_cached = encode_response_payload(flagged);
  // The cached byte is followed by the (empty varint-length) introspect
  // string, the v4 tail (two one-byte zero varints plus an 8-byte
  // run_compression double), and the empty v5 tail (two zero counts, an
  // 8-byte double, refine_passes, the verified count, and two predictor
  // varints) — 25 trailing bytes.
  bad_cached[bad_cached.size() - 26] = '\x02';
  EXPECT_THROW(static_cast<void>(decode_response_payload(bad_cached)),
               ContractError);
}

/// Connects a raw AF_UNIX stream to `path` (test-side plumbing for speaking
/// old wire dialects on purpose).
int raw_connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  return fd;
}

/// Sends one pre-encoded frame and reads back one whole response frame.
/// Returns (header, payload).
std::pair<FrameHeader, std::string> raw_roundtrip(int fd,
                                                  const std::string& frame) {
  EXPECT_EQ(::send(fd, frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));
  char header_bytes[kFrameHeaderBytes];
  std::size_t got = 0;
  while (got < sizeof(header_bytes)) {
    const ssize_t r =
        ::recv(fd, header_bytes + got, sizeof(header_bytes) - got, 0);
    EXPECT_GT(r, 0);
    if (r <= 0) return {};
    got += static_cast<std::size_t>(r);
  }
  const FrameHeader header = decode_frame_header(header_bytes);
  std::string payload(header.payload_len, '\0');
  got = 0;
  while (got < payload.size()) {
    const ssize_t r = ::recv(fd, payload.data() + got, payload.size() - got, 0);
    EXPECT_GT(r, 0);
    if (r <= 0) return {};
    got += static_cast<std::size_t>(r);
  }
  return {header, std::move(payload)};
}

TEST(ServiceSocket, OlderClientsGetByteIdenticalV2Responses) {
  ServerConfig config;
  config.workers = 1;
  config.cache_enabled = false;
  ServiceServer server(config, std::make_unique<CountingExecutor>());
  const std::string socket_path = "svc_versions.sock";
  server.listen_unix(socket_path);

  JobRequest job =
      solo_request("429.mcf", std::nullopt, Measure::kHardware, 21);
  // Pin the trace context: with CODELAYOUT_TRACE=1 the client would assign
  // random ids, and the receipt's byte count must stay deterministic.
  job.trace_id = 0xfeed;
  job.span_id = 1;

  // A v3 client sees a receipt stamped with real timings.
  ServiceClient v3_client = ServiceClient::connect_unix(socket_path);
  const JobResponse v3 = v3_client.call(job);
  ASSERT_EQ(v3.status, JobStatus::kOk);
  EXPECT_GT(v3.receipt.wall_nanos, 0u);
  EXPECT_EQ(v3.receipt.bytes_decoded, encode_request_payload(job).size());

  // v1 and v2 clients get answers stamped v2 with no receipt bytes — and
  // byte-identical to each other (the daemon answers in the caller's
  // dialect, so old clients see exactly what a v2 build sent).
  const int v1_fd = raw_connect(socket_path);
  const auto [v1_header, v1_payload] =
      raw_roundtrip(v1_fd, encode_request_frame(job, 1));
  const int v2_fd = raw_connect(socket_path);
  const auto [v2_header, v2_payload] =
      raw_roundtrip(v2_fd, encode_request_frame(job, 2));
  EXPECT_EQ(v1_header.version, 2u);
  EXPECT_EQ(v2_header.version, 2u);
  EXPECT_EQ(v1_payload, v2_payload);

  // The v2 payload is exactly the v3 response minus its receipt tail.
  JobResponse expected = v3;
  expected.receipt = CostReceipt{};
  expected.introspect.clear();
  EXPECT_EQ(v2_payload, encode_response_payload(expected, 2));
  const JobResponse decoded = decode_response_payload(v2_payload, 2);
  EXPECT_EQ(decoded.receipt, CostReceipt{});

  ::close(v1_fd);
  ::close(v2_fd);
  server.shutdown();
}

TEST(ServiceSocket, TruncatedFrameDoesNotWedgeTheServer) {
  ServerConfig config;
  config.workers = 1;
  ServiceServer server(config, std::make_unique<CountingExecutor>());
  const std::string socket_path = "svc_trunc.sock";
  server.listen_unix(socket_path);

  // A v3 header promising more payload than ever arrives: the connection
  // dies, the server does not.
  const std::string frame = encode_request_frame(
      solo_request("429.mcf", std::nullopt, Measure::kHardware, 2));
  const int fd = raw_connect(socket_path);
  ASSERT_EQ(::send(fd, frame.data(), frame.size() - 3, 0),
            static_cast<ssize_t>(frame.size() - 3));
  ::shutdown(fd, SHUT_WR);
  char byte;
  while (::recv(fd, &byte, 1, 0) > 0) {
  }
  ::close(fd);

  // Fresh clients still get service afterwards.
  ServiceClient client = ServiceClient::connect_unix(socket_path);
  const JobResponse response =
      client.call(solo_request("w", std::nullopt, Measure::kHardware, 3));
  EXPECT_EQ(response.status, JobStatus::kOk);
  server.shutdown();
}

TEST(ServiceServer, IntrospectionServedWhileWorkersSaturated) {
  auto owned = std::make_unique<GatedExecutor>();
  GatedExecutor* gate = owned.get();
  ServiceServer server(small_config(1, 8), std::move(owned));

  // Saturate: one job in flight (blocked in the gate), one queued.
  Deliveries deliveries;
  server.submit(solo_request("a", std::nullopt, Measure::kHardware, 1),
                deliveries.sink());
  server.submit(solo_request("b", std::nullopt, Measure::kHardware, 2),
                deliveries.sink());
  gate->wait_started(1);

  // Introspection bypasses the queue entirely: it answers inline while the
  // only worker is wedged.
  JobRequest stats_request;
  stats_request.id = 90;
  stats_request.kind = JobKind::kIntrospect;
  stats_request.introspect = IntrospectKind::kStats;
  const JobResponse stats = server.call(stats_request);
  ASSERT_EQ(stats.status, JobStatus::kOk);
  std::string error;
  EXPECT_TRUE(testing::json_is_valid(stats.introspect, &error))
      << error << "\n"
      << stats.introspect;
  EXPECT_NE(stats.introspect.find("\"inflight\":1"), std::string::npos)
      << stats.introspect;
  EXPECT_NE(stats.introspect.find("\"queued\":1"), std::string::npos);
  EXPECT_NE(stats.introspect.find("\"status\":\"ok\""), std::string::npos);

  JobRequest health_request;
  health_request.kind = JobKind::kIntrospect;
  health_request.introspect = IntrospectKind::kHealth;
  const JobResponse health = server.call(health_request);
  ASSERT_EQ(health.status, JobStatus::kOk);
  EXPECT_NE(health.introspect.find("\"uptime_ns\""), std::string::npos);

  // Introspect jobs count as introspected, never as completed work, and
  // never enter the worker queues.
  EXPECT_EQ(server.stats().introspected, 2u);
  EXPECT_EQ(server.stats().completed, 0u);

  gate->open();
  server.shutdown();
  EXPECT_EQ(deliveries.all().size(), 2u);
}

TEST(ServiceServer, RecentJobsRingKeepsNewestCapped) {
  ServerConfig config;
  config.workers = 1;
  config.cache_enabled = true;
  ServiceServer server(config, std::make_unique<CountingExecutor>());

  const std::size_t total = ServiceServer::kRecentJobsCapacity + 8;
  for (std::size_t i = 1; i <= total; ++i) {
    const JobResponse response = server.call(
        solo_request("w" + std::to_string(i), std::nullopt,
                     Measure::kHardware, i));
    ASSERT_EQ(response.status, JobStatus::kOk);
  }
  // One repeat: served from the cache, still recorded in the ring.
  const JobResponse repeat = server.call(solo_request(
      "w" + std::to_string(total), std::nullopt, Measure::kHardware, 999));
  ASSERT_EQ(repeat.status, JobStatus::kOk);
  EXPECT_TRUE(repeat.receipt.cached);

  const std::vector<ServiceServer::RecentJob> recent = server.recent_jobs();
  ASSERT_EQ(recent.size(), ServiceServer::kRecentJobsCapacity);
  EXPECT_EQ(recent.front().id, 999u);  // newest first
  EXPECT_TRUE(recent.front().cached);
  EXPECT_EQ(recent.front().wall_nanos, 0u);
  EXPECT_EQ(recent[1].id, total);
  EXPECT_FALSE(recent[1].cached);

  // The same ring serves the kRecentJobs introspection document.
  JobRequest request;
  request.kind = JobKind::kIntrospect;
  request.introspect = IntrospectKind::kRecentJobs;
  const JobResponse doc = server.call(request);
  ASSERT_EQ(doc.status, JobStatus::kOk);
  std::string error;
  EXPECT_TRUE(testing::json_is_valid(doc.introspect, &error)) << error;
  EXPECT_NE(doc.introspect.find("\"count\":32"), std::string::npos)
      << doc.introspect;
  EXPECT_NE(doc.introspect.find("\"id\":999"), std::string::npos);
  // v4 dispatch attribution is part of every ring entry (zero for the
  // CountingExecutor, which never touches an analysis kernel).
  EXPECT_NE(doc.introspect.find("\"dispatch_run\":"), std::string::npos)
      << doc.introspect;
  EXPECT_NE(doc.introspect.find("\"dispatch_flat\":"), std::string::npos);
  EXPECT_NE(doc.introspect.find("\"run_compression\":"), std::string::npos);
  // v5 predictor attribution rides the same ring entries.
  EXPECT_NE(doc.introspect.find("\"predict_calls\":"), std::string::npos);
  EXPECT_NE(doc.introspect.find("\"profile_memo_hits\":"), std::string::npos);
  server.shutdown();
}

TEST(ServiceSocket, ClientIntrospectHelperFetchesLintCleanDocs) {
  ServerConfig config;
  config.workers = 1;
  ServiceServer server(config, std::make_unique<CountingExecutor>());
  const std::string socket_path = "svc_introspect.sock";
  server.listen_unix(socket_path);
  ServiceClient client = ServiceClient::connect_unix(socket_path);

  const std::string stats = client.introspect(IntrospectKind::kStats);
  std::string error;
  EXPECT_TRUE(testing::json_is_valid(stats, &error)) << error << "\n" << stats;
  EXPECT_NE(stats.find("\"workers\":1"), std::string::npos);

  const std::string prom = client.introspect(IntrospectKind::kPrometheus);
  EXPECT_TRUE(testing::prom_is_valid(prom, &error)) << error << "\n" << prom;

  const std::string trace = client.introspect(IntrospectKind::kTraceExport);
  EXPECT_TRUE(testing::json_is_valid(trace, &error)) << error;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  server.shutdown();
}

TEST(ServiceSocket, TracedCallTagsClientAndDaemonSpansWithOneId) {
  TraceRecorder::instance().clear();
  TraceRecorder::instance().enable();
  ServerConfig config;
  config.workers = 1;
  ServiceServer server(config, std::make_unique<CountingExecutor>());
  const std::string socket_path = "svc_traced.sock";
  server.listen_unix(socket_path);
  {
    ServiceClient client = ServiceClient::connect_unix(socket_path);
    const JobResponse response = client.call(
        solo_request("429.mcf", std::nullopt, Measure::kHardware, 4));
    ASSERT_EQ(response.status, JobStatus::kOk);
  }
  server.shutdown();
  TraceRecorder::instance().disable();

  // The daemon recorded the job with the client-assigned (nonzero) trace id.
  const std::vector<ServiceServer::RecentJob> recent = server.recent_jobs();
  ASSERT_FALSE(recent.empty());
  const std::uint64_t trace_id = recent.front().trace_id;
  EXPECT_NE(trace_id, 0u);

  // In-process both sides share one recorder: the export must show the
  // client-side service_call span AND the daemon-side service_job span
  // tagged with the same trace id.
  const std::string doc = TraceRecorder::instance().export_chrome_trace();
  TraceRecorder::instance().clear();
  std::string error;
  ASSERT_TRUE(testing::json_is_valid(doc, &error)) << error;
  const std::string tag = "\"trace_id\":\"" + std::to_string(trace_id) + "\"";
  std::size_t tagged = 0;
  for (std::size_t pos = doc.find(tag); pos != std::string::npos;
       pos = doc.find(tag, pos + 1)) {
    ++tagged;
  }
  EXPECT_GE(tagged, 2u) << doc;
  EXPECT_NE(doc.find("\"name\":\"service_call\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"service_job\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"queue-wait\""), std::string::npos);
}

TEST(ServiceSocket, ConcurrentClientsAllGetTheirOwnAnswers) {
  ServerConfig config;
  config.workers = 2;
  ServiceServer server(config, std::make_unique<CountingExecutor>());
  const std::string socket_path = "svc_many.sock";
  server.listen_unix(socket_path);

  constexpr unsigned kClients = 4;
  constexpr unsigned kJobs = 16;
  std::atomic<unsigned> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (unsigned c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ServiceClient client = ServiceClient::connect_unix(socket_path);
      for (unsigned j = 0; j < kJobs; ++j) {
        // Distinct workloads per job: the response payload must echo this
        // request's workload length, not some other client's.
        const std::string workload(1 + (c * kJobs + j) % 9, 'w');
        JobRequest request =
            solo_request(workload, std::nullopt, Measure::kHardware,
                         (static_cast<std::uint64_t>(c) << 32) | j);
        const JobResponse response = client.call(request);
        if (response.status != JobStatus::kOk ||
            response.trace_stats.events != workload.size()) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
  server.shutdown();
  EXPECT_EQ(server.stats().completed + server.stats().cache_hits,
            static_cast<std::uint64_t>(kClients) * kJobs);
}

}  // namespace
}  // namespace codelayout::service
