#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "support/check.hpp"
#include "support/flat_map.hpp"
#include "support/format.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace codelayout {
namespace {

// ---------- CL_CHECK -------------------------------------------------------

TEST(Check, PassingCheckDoesNothing) { CL_CHECK(1 + 1 == 2); }

TEST(Check, FailingCheckThrowsContractError) {
  EXPECT_THROW(CL_CHECK(false), ContractError);
}

TEST(Check, MessageIsIncluded) {
  try {
    CL_CHECK_MSG(false, "value was " << 42);
    FAIL() << "expected throw";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

// ---------- Rng ------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent(7);
  const Rng child1 = parent.fork(5);
  // Forking does not consume parent state.
  Rng parent2(7);
  const Rng child2 = parent2.fork(5);
  Rng c1 = child1, c2 = child2;
  for (int i = 0; i < 16; ++i) EXPECT_EQ(c1.next(), c2.next());
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(99);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(42);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GeometricMeanApproximates) {
  Rng rng(23);
  // back-edge probability p gives mean p/(1-p) iterations.
  const double p = 0.9;
  double total = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    total += static_cast<double>(rng.geometric(p, 100000));
  }
  EXPECT_NEAR(total / n, p / (1 - p), 0.5);
}

TEST(Rng, GeometricRespectsCap) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_LE(rng.geometric(0.999, 5), 5u);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(31);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.weighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / double(counts[0]), 3.0, 0.4);
}

TEST(Rng, WeightedRejectsAllZero) {
  Rng rng(1);
  const std::vector<double> weights = {0.0, 0.0};
  EXPECT_THROW(rng.weighted(weights), ContractError);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(37);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.zipf(10, 1.2)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9]);
}

TEST(Rng, ZipfZeroExponentIsUniformish) {
  Rng rng(41);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.zipf(4, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 200);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(43);
  const auto p = rng.permutation(50);
  std::set<std::uint32_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(47);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Hash, SplitmixAdvancesState) {
  std::uint64_t s = 1;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(Hash, CombineIsOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

// ---------- RunningStats ----------------------------------------------------

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  Rng rng(53);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform() * 10;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

// ---------- free-function stats ---------------------------------------------

TEST(Stats, MeanAndGeomean) {
  const std::vector<double> xs = {1.0, 2.0, 4.0};
  EXPECT_NEAR(mean_of(xs), 7.0 / 3, 1e-12);
  EXPECT_NEAR(geomean_of(xs), 2.0, 1e-12);
  EXPECT_EQ(mean_of({}), 0.0);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  const std::vector<double> xs = {1.0, 0.0};
  EXPECT_THROW(geomean_of(xs), ContractError);
}

TEST(Stats, Percentile) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 25), 2.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(9.9);
  h.add(-3.0);   // clamps to first bin
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_high(1), 4.0);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i % 10 + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
  EXPECT_NEAR(h.quantile(1.0), 10.0, 1.0);
}

// ---------- format -----------------------------------------------------------

TEST(Format, Percent) {
  EXPECT_EQ(fmt_pct(0.1234), "12.34%");
  EXPECT_EQ(fmt_pct(0.1234, 1), "12.3%");
  EXPECT_EQ(fmt_signed_pct(0.042), "+4.20%");
  EXPECT_EQ(fmt_signed_pct(-0.011), "-1.10%");
}

TEST(Format, Bytes) {
  EXPECT_EQ(fmt_bytes(512), "512");
  EXPECT_EQ(fmt_bytes(86'900), "84.86K");
  EXPECT_EQ(fmt_bytes(2 * 1024 * 1024), "2.00M");
}

TEST(Format, Count) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1937320), "1,937,320");
}

TEST(Format, TableRendersAllCells) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Format, TableRejectsRaggedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), ContractError);
}

TEST(Format, AsciiBarsHandleNegativeAndZero) {
  const std::string out =
      ascii_bars({{"up", 2.0}, {"down", -1.0}, {"zero", 0.0}}, 10);
  EXPECT_NE(out.find("up"), std::string::npos);
  EXPECT_NE(out.find('-'), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

// ---------- JsonWriter -----------------------------------------------------

TEST(JsonWriter, FlatObject) {
  JsonWriter w;
  w.field("a", std::uint64_t{1}).field("b", "two").field("c", true);
  EXPECT_EQ(w.finish(), R"({"a":1,"b":"two","c":true})");
}

TEST(JsonWriter, NestedObjectsAndArrays) {
  JsonWriter w;
  w.field("name", "root");
  w.begin_array("items");
  w.begin_object().field("id", std::uint64_t{1}).end_object();
  w.begin_object().field("id", std::uint64_t{2}).end_object();
  w.end_array();
  w.begin_object("meta").field("ok", true).end_object();
  EXPECT_EQ(w.finish(),
            R"({"name":"root","items":[{"id":1},{"id":2}],)"
            R"("meta":{"ok":true}})");
}

TEST(JsonWriter, ScalarArrayElements) {
  JsonWriter w;
  w.begin_array("xs");
  w.value(std::uint64_t{7}).value("mid").value(1.5);
  w.end_array();
  EXPECT_EQ(w.finish(), R"({"xs":[7,"mid",1.5]})");
}

TEST(JsonWriter, EscapesQuotesBackslashesAndNamedControls) {
  JsonWriter w;
  w.field("k", "a\"b\\c\nd\te\rf\bg\fh");
  EXPECT_EQ(w.finish(), "{\"k\":\"a\\\"b\\\\c\\nd\\te\\rf\\bg\\fh\"}");
}

TEST(JsonWriter, EscapesRawControlBytesAsUnicode) {
  JsonWriter w;
  w.field("k", std::string_view("\x01\x1f", 2));
  EXPECT_EQ(w.finish(), "{\"k\":\"\\u0001\\u001f\"}");
}

TEST(JsonWriter, EscapedKeysToo) {
  JsonWriter w;
  w.field("we\"ird\n", std::uint64_t{1});
  EXPECT_EQ(w.finish(), "{\"we\\\"ird\\n\":1}");
}

TEST(JsonWriter, FinishClosesAllOpenContainers) {
  JsonWriter w;
  w.begin_object("a");
  w.begin_array("b");
  w.begin_object().field("deep", true);
  EXPECT_EQ(w.finish(), R"({"a":{"b":[{"deep":true}]}})");
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter w;
  w.begin_array("empty_array").end_array();
  w.begin_object("empty_object").end_object();
  EXPECT_EQ(w.finish(), R"({"empty_array":[],"empty_object":{}})");
}

// ---------- FlatKeyMap -----------------------------------------------------

TEST(FlatKeyMap, InsertFindAndValueInit) {
  FlatKeyMap<std::uint64_t> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(7), nullptr);
  map[7] += 3;  // operator[] value-initializes on first touch
  map[7] += 4;
  ASSERT_NE(map.find(7), nullptr);
  EXPECT_EQ(*map.find(7), 7u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatKeyMap, GrowthPreservesEntries) {
  FlatKeyMap<std::uint64_t> map;
  Rng rng(5);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 5'000; ++i) {
    keys.push_back(1 + rng.next() % 1'000'000);
  }
  for (std::uint64_t k : keys) map[k] += k;
  std::set<std::uint64_t> distinct(keys.begin(), keys.end());
  EXPECT_EQ(map.size(), distinct.size());
  // Every entry holds the sum of its own key over its multiplicity.
  std::uint64_t walked = 0;
  map.for_each([&](std::uint64_t key, const std::uint64_t& value) {
    EXPECT_EQ(value % key, 0u);
    ++walked;
  });
  EXPECT_EQ(walked, distinct.size());
}

TEST(FlatKeyMap, AdjacentKeysDoNotCollideIntoEachOther) {
  // Packed pair keys differ only in low bits; the mix must keep them apart.
  FlatKeyMap<int> map;
  for (std::uint64_t k = 1; k <= 512; ++k) map[k] = static_cast<int>(k);
  for (std::uint64_t k = 1; k <= 512; ++k) {
    ASSERT_NE(map.find(k), nullptr) << k;
    EXPECT_EQ(*map.find(k), static_cast<int>(k));
  }
  EXPECT_EQ(map.find(513), nullptr);
}

TEST(FlatKeyMap, ReserveAvoidsRehashInvalidation) {
  FlatKeyMap<int> map;
  map.reserve(100);
  int& first = map[42];
  for (std::uint64_t k = 1; k <= 100; ++k) map[k] = 1;
  first = 9;  // still valid: no rehash happened within the reserved budget
  EXPECT_EQ(*map.find(42), 9);
}

TEST(FlatKeyMap, ClearEmpties) {
  FlatKeyMap<int> map;
  map[3] = 1;
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(3), nullptr);
}

}  // namespace
}  // namespace codelayout
