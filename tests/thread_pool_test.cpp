// Tests for the evaluation engine's support primitives: the worker pool,
// the per-stage counters, and the JSON writer behind the benches' --json.
#include <atomic>
#include <future>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "support/metrics.hpp"
#include "support/thread_pool.hpp"

namespace codelayout {
namespace {

TEST(ThreadPoolTest, ExecutesEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);

  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 100; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, SingleWorkerStillDrainsQueue) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolTest, FuturePropagatesTaskException) {
  ThreadPool pool(2);
  std::future<void> f =
      pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);

  // The pool survives a throwing task.
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran.store(true); }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DefaultThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

TEST(ThreadPoolTest, SubmitCapturesJobContextIntoWorkers) {
  ThreadPool pool(2);
  CostCounters cost;
  std::atomic<std::uint64_t> seen_trace{0};
  std::atomic<CostCounters*> seen_cost{nullptr};
  {
    // The submitter's ambient context rides along with the task — with
    // tracing off too, so cost attribution works in production paths.
    ScopedJobContext scope(JobContext{777, 3, &cost});
    pool.submit([&] {
        const JobContext& context = current_job_context();
        seen_trace.store(context.trace_id);
        seen_cost.store(context.cost);
      })
        .get();
  }
  EXPECT_EQ(seen_trace.load(), 777u);
  EXPECT_EQ(seen_cost.load(), &cost);

  // A task submitted with no ambient context runs context-free: the worker
  // must not leak the previous task's ids.
  std::atomic<bool> context_free{false};
  pool.submit([&] { context_free.store(!current_job_context().active()); })
      .get();
  EXPECT_TRUE(context_free.load());
}

TEST(StageCountersTest, SnapshotReflectsRecordedEvents) {
  StageCounters counters;
  counters.record_hit();
  counters.record_hit();
  counters.record_wait();
  counters.record_compute(/*wall=*/100, /*cpu=*/60);
  counters.record_compute(/*wall=*/50, /*cpu=*/40);

  const StageSnapshot snap = StageSnapshot::from(counters);
  EXPECT_EQ(snap.hits, 2u);
  EXPECT_EQ(snap.waited, 1u);
  EXPECT_EQ(snap.computed, 2u);
  EXPECT_EQ(snap.wall_nanos, 150u);
  EXPECT_EQ(snap.cpu_nanos, 100u);
  EXPECT_EQ(snap.lookups(), 5u);
}

TEST(MetricsClockTest, WallClockIsMonotonic) {
  const std::uint64_t a = wall_nanos_now();
  const std::uint64_t b = wall_nanos_now();
  EXPECT_LE(a, b);
}

TEST(JsonWriterTest, NestedObjectsAndScalars) {
  JsonWriter json;
  json.field("bench", std::string_view{"table2"});
  json.begin_object("engine");
  json.field("threads", 4u);
  json.field("wall_ms", 1.5);
  json.field("ok", true);
  json.begin_object("stages");
  json.field("computed", std::uint64_t{7});
  json.end_object();
  json.field("after", std::uint64_t{1});
  json.end_object();
  EXPECT_EQ(json.finish(),
            "{\"bench\":\"table2\",\"engine\":{\"threads\":4,"
            "\"wall_ms\":1.5,\"ok\":true,\"stages\":{\"computed\":7},"
            "\"after\":1}}");
}

TEST(JsonWriterTest, FinishClosesAllOpenObjects) {
  JsonWriter json;
  json.begin_object("a").begin_object("b").field("x", std::uint64_t{1});
  EXPECT_EQ(json.finish(), "{\"a\":{\"b\":{\"x\":1}}}");
}

TEST(JsonWriterTest, EscapesQuotesAndBackslashes) {
  JsonWriter json;
  json.field("s", std::string_view{"a\"b\\c"});
  EXPECT_EQ(json.finish(), "{\"s\":\"a\\\"b\\\\c\"}");
}

}  // namespace
}  // namespace codelayout
