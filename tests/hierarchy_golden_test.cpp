// Golden guard for the hierarchy refactor (DESIGN.md §13): the
// default-constructed HierarchySpec IS the legacy flat private L1I. Three
// locks, from the bytes up:
//   1. The canonical encoding of the default spec is pinned literally, so an
//      accidental change to the paper defaults (geometry or latency ladder)
//      fails here before it silently re-keys every cache and golden hash.
//   2. Explicitly threading the default spec through SimOptions reproduces
//      the pre-hierarchy solo checksums (golden_suite.inc) bit for bit over
//      the full 29-workload suite, in both measurement flavours.
//   3. The default spec is invisible in EvalKey identity: no "|g=" suffix,
//      same to_string() as the legacy key.
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/hierarchy.hpp"
#include "cache/icache_sim.hpp"
#include "exec/interpreter.hpp"
#include "harness/eval.hpp"
#include "harness/pipeline.hpp"
#include "helpers.hpp"
#include "layout/layout.hpp"
#include "support/thread_pool.hpp"
#include "workloads/spec.hpp"

namespace codelayout {
namespace {

using testing::hash_sim;

struct GoldenWorkload {
  const char* name;
  std::uint64_t profile_hash;
  std::uint64_t functions_hash;
  std::uint64_t eval_hash;
  std::uint64_t pruned_hash;
  std::uint64_t kept_events;
  std::uint64_t reuse_hash;
  std::uint64_t footprint_hash;
  std::uint64_t trg_hash;
  std::uint64_t solo_sim_hash;
  std::uint64_t solo_hw_hash;
};

struct GoldenPipeline {
  const char* name;
  std::uint64_t sequence_hash[4];
  std::uint64_t sim_hash[4];
};

#include "golden_suite.inc"

TEST(HierarchyGolden, DefaultSpecEncodingIsPinned) {
  // varint L1 triple (32768, 4, 64) + absent-L2 byte + three LE doubles
  // (1.0, 7.0, 35.0). If this changes, every memo key, response-cache key,
  // and wire payload changes identity with it — that must be deliberate.
  static const unsigned char kExpected[] = {
      0x80, 0x80, 0x02, 0x04, 0x40,                    // 32768 / 4 / 64
      0x00,                                            // no L2
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xf0, 0x3f,  // l1_hit = 1.0
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x1c, 0x40,  // l2_hit = 7.0
      0x00, 0x00, 0x00, 0x00, 0x00, 0x80, 0x41, 0x40,  // memory = 35.0
  };
  const std::string encoded = HierarchySpec{}.encode();
  ASSERT_EQ(encoded.size(), sizeof(kExpected));
  for (std::size_t i = 0; i < sizeof(kExpected); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(encoded[i]), kExpected[i])
        << "byte " << i;
  }
  EXPECT_EQ(HierarchySpec::decode(encoded), HierarchySpec{});
  EXPECT_EQ(HierarchySpec{}, kPaperHierarchy);
}

TEST(HierarchyGolden, DefaultSpecIsInvisibleInEvalKeys) {
  const EvalRequest legacy =
      EvalRequest::solo("429.mcf", kBBAffinity, Measure::kHardware);
  const EvalRequest threaded = EvalRequest::solo(
      "429.mcf", kBBAffinity, Measure::kHardware, HierarchySpec{});
  EXPECT_EQ(legacy.key.to_string(), threaded.key.to_string());
  EXPECT_EQ(legacy.key.to_string().find("|g="), std::string::npos);

  HierarchySpec l2;
  l2.l2 = CacheGeometry{256 * 1024, 8, 64};
  const EvalRequest shared =
      EvalRequest::solo("429.mcf", kBBAffinity, Measure::kHardware, l2);
  EXPECT_NE(shared.key.to_string().find("|g=32K/4/64+l2=256K/8/64"),
            std::string::npos)
      << shared.key.to_string();
}

TEST(HierarchyGolden, ExplicitDefaultSpecMatchesLegacyChecksums) {
  const PipelineConfig config;
  ThreadPool pool(ThreadPool::default_threads());
  std::mutex mu;
  std::vector<std::string> failures;
  std::vector<std::future<void>> pending;

  for (const GoldenWorkload& row : kGoldenWorkloads) {
    pending.push_back(pool.submit([&row, &config, &mu, &failures] {
      std::vector<std::string> local;
      const WorkloadSpec& spec = find_spec(row.name);
      const Module module = build_workload(spec);
      const ProfileResult eval =
          profile(module, config.eval_seed,
                  {.max_events = spec.eval_events, .max_call_depth = 64});
      const CodeLayout original = original_layout(module);

      // The spec is set explicitly, not inherited from the default member
      // initializer: the threading itself is what is under test.
      SimOptions sim_options;
      sim_options.hierarchy = HierarchySpec{};
      SimOptions hw_options = hardware_proxy_options();
      hw_options.hierarchy = kPaperHierarchy;

      const SimResult sim =
          simulate_solo(module, original, eval.block_trace, sim_options);
      if (hash_sim(sim) != row.solo_sim_hash) {
        local.push_back(std::string(row.name) +
                        ": explicit default spec diverged from the legacy "
                        "simulator checksum");
      }
      if (sim.l2_probes != 0 || sim.l2_misses != 0) {
        local.push_back(std::string(row.name) +
                        ": flat hierarchy reported L2 traffic");
      }
      const SimResult hw =
          simulate_solo(module, original, eval.block_trace, hw_options);
      if (hash_sim(hw) != row.solo_hw_hash) {
        local.push_back(std::string(row.name) +
                        ": explicit default spec diverged from the legacy "
                        "hardware-proxy checksum");
      }

      if (!local.empty()) {
        const std::lock_guard<std::mutex> lock(mu);
        for (std::string& f : local) failures.push_back(std::move(f));
      }
    }));
  }
  for (auto& p : pending) p.get();
  for (const std::string& f : failures) ADD_FAILURE() << f;
}

}  // namespace
}  // namespace codelayout
