// Flight-recorder tests: disabled-path behavior, ring wrap-around, export
// format, the multi-threaded TSan scenario, and the determinism guarantee
// (identical kernel results with observability on and off).
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "json_lint.hpp"
#include "locality/footprint.hpp"
#include "support/registry.hpp"
#include "support/trace_recorder.hpp"
#include "trace/trace.hpp"
#include "trg/graph.hpp"

namespace codelayout {
namespace {

using testing::json_is_valid;

/// Counts non-overlapping occurrences of `needle` in `doc`.
std::size_t count_occurrences(const std::string& doc, std::string_view needle) {
  std::size_t n = 0;
  for (std::size_t pos = doc.find(needle); pos != std::string::npos;
       pos = doc.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

/// Extracts the tid of every ph:"X" event, relying on the exporter's fixed
/// field order (..."ph":"X","ts":...,"dur":...,"pid":1,"tid":N...).
std::vector<std::uint64_t> complete_event_tids(const std::string& doc) {
  std::vector<std::uint64_t> tids;
  for (std::size_t pos = doc.find(R"("ph":"X")"); pos != std::string::npos;
       pos = doc.find(R"("ph":"X")", pos + 1)) {
    const std::size_t tid_key = doc.find(R"("tid":)", pos);
    EXPECT_NE(tid_key, std::string::npos);
    tids.push_back(std::stoull(doc.substr(tid_key + 6)));
  }
  return tids;
}

/// Restores the process-wide recorder/registry to "off and empty" even when
/// a test fails mid-way.
struct ObservabilityOff {
  ~ObservabilityOff() {
    TraceRecorder::instance().disable();
    TraceRecorder::instance().clear();
    MetricsRegistry::global().set_enabled(false);
  }
};

TEST(ScopedSpanTest, DisabledRecorderSkipsArgConstruction) {
  ObservabilityOff guard;
  TraceRecorder::instance().disable();
  int arg_builds = 0;
  {
    ScopedSpan span("noop", "test", [&] {
      ++arg_builds;
      return std::vector<SpanArg>{{"k", "v"}};
    });
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(arg_builds, 0);
}

TEST(ScopedSpanTest, EnabledRecorderBuildsArgsAndRecords) {
  ObservabilityOff guard;
  TraceRecorder::instance().clear();
  TraceRecorder::instance().enable();
  int arg_builds = 0;
  {
    ScopedSpan span("unit-span", "test", [&] {
      ++arg_builds;
      return std::vector<SpanArg>{{"k", "v"}};
    });
    EXPECT_TRUE(span.active());
  }
  EXPECT_EQ(arg_builds, 1);
  const std::string doc = TraceRecorder::instance().export_chrome_trace();
  EXPECT_NE(doc.find(R"("name":"unit-span")"), std::string::npos);
  EXPECT_NE(doc.find(R"("k":"v")"), std::string::npos);
}

TEST(ScopedSpanTest, MacroCompilesWithZeroOneAndManyArgs) {
  ObservabilityOff guard;
  TraceRecorder::instance().enable();
  const std::string workload = "sjeng";
  {
    CODELAYOUT_SPAN("zero", "test");
    CODELAYOUT_SPAN("one", "test", {"workload", workload});
    CODELAYOUT_SPAN("many", "test", {"workload", workload},
                    {"count", std::uint64_t{3}}, {"mode", "hw"});
  }
  const std::string doc = TraceRecorder::instance().export_chrome_trace();
  for (const char* name : {"zero", "one", "many"}) {
    EXPECT_NE(doc.find("\"name\":\"" + std::string(name) + "\""),
              std::string::npos);
  }
}

TEST(TraceRecorderTest, RingWrapKeepsNewestAndCountsDropped) {
  TraceRecorder recorder;
  recorder.set_ring_capacity(8);
  recorder.enable();
  for (int i = 0; i < 12; ++i) {
    recorder.record_span("old", "test", 100 * i, 10, {});
  }
  for (int i = 0; i < 8; ++i) {
    recorder.record_span("new", "test", 10000 + 100 * i, 10, {});
  }
  EXPECT_EQ(recorder.recorded_spans(), 8u);
  EXPECT_EQ(recorder.dropped_spans(), 12u);
  const std::string doc = recorder.export_chrome_trace();
  EXPECT_EQ(count_occurrences(doc, R"("name":"new")"), 8u);
  EXPECT_EQ(count_occurrences(doc, R"("name":"old")"), 0u);
  EXPECT_NE(doc.find(R"("dropped_spans":12)"), std::string::npos);
}

TEST(TraceRecorderTest, ExportOrdersWrappedRingOldestFirst) {
  TraceRecorder recorder;
  recorder.set_ring_capacity(4);
  recorder.enable();
  for (int i = 0; i < 10; ++i) {
    recorder.record_span("tick", "test", 100 * i, 10, {{"i", i}});
  }
  const std::string doc = recorder.export_chrome_trace();
  // The surviving spans are i = 6..9, exported oldest-first.
  std::size_t prev = 0;
  for (int i = 6; i < 10; ++i) {
    const std::size_t pos =
        doc.find("\"i\":\"" + std::to_string(i) + "\"");
    ASSERT_NE(pos, std::string::npos) << "span i=" << i << " missing";
    EXPECT_GT(pos, prev) << "span i=" << i << " out of order";
    prev = pos;
  }
  EXPECT_EQ(doc.find(R"("i":"5")"), std::string::npos);
}

TEST(TraceRecorderTest, ClearEmptiesRingsButKeepsRegistrations) {
  TraceRecorder recorder;
  recorder.enable();
  recorder.record_span("s", "test", 0, 1, {});
  EXPECT_EQ(recorder.recorded_spans(), 1u);
  recorder.clear();
  EXPECT_EQ(recorder.recorded_spans(), 0u);
  EXPECT_EQ(recorder.dropped_spans(), 0u);
  recorder.record_span("s", "test", 5, 1, {});
  EXPECT_EQ(recorder.recorded_spans(), 1u);
}

TEST(TraceRecorderTest, ExportIsValidJsonWithExpectedSkeleton) {
  TraceRecorder recorder;
  recorder.enable();
  recorder.set_thread_name("main");
  recorder.record_span("phase", "pipeline", 1000, 500,
                       {{"workload", "429.mcf"}, {"window", 2048u}});
  const std::string doc = recorder.export_chrome_trace();
  std::string error;
  EXPECT_TRUE(json_is_valid(doc, &error)) << error << "\n" << doc;
  EXPECT_NE(doc.find(R"("displayTimeUnit":"ns")"), std::string::npos);
  EXPECT_NE(doc.find(R"("traceEvents":[)"), std::string::npos);
  EXPECT_NE(doc.find(R"("name":"thread_name")"), std::string::npos);
  EXPECT_NE(doc.find(R"("name":"main")"), std::string::npos);
  EXPECT_NE(doc.find(R"("workload":"429.mcf")"), std::string::npos);
  EXPECT_NE(doc.find(R"("window":"2048")"), std::string::npos);
}

// The satellite concurrency scenario (runs under TSan in CI): N threads emit
// overlapping spans through the macros while naming their threads; the export
// must parse, and every complete event must carry a valid tid.
TEST(TraceRecorderTest, ConcurrentSpansExportValidJson) {
  ObservabilityOff guard;
  TraceRecorder::instance().clear();
  TraceRecorder::instance().enable();

  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      TraceRecorder::instance().set_thread_name("stress-" + std::to_string(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        CODELAYOUT_SPAN("outer", "stress", {"thread", t}, {"i", i});
        {
          // Overlapping nested span on the same thread.
          CODELAYOUT_SPAN("inner", "stress", {"i", i});
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  TraceRecorder::instance().disable();

  const std::uint64_t recorded = TraceRecorder::instance().recorded_spans();
  EXPECT_GE(recorded,
            static_cast<std::uint64_t>(kThreads * kSpansPerThread * 2));

  const std::string doc = TraceRecorder::instance().export_chrome_trace();
  std::string error;
  ASSERT_TRUE(json_is_valid(doc, &error)) << error;

  const std::vector<std::uint64_t> tids = complete_event_tids(doc);
  EXPECT_EQ(tids.size(), recorded);
  for (const std::uint64_t tid : tids) {
    EXPECT_GE(tid, 1u);
    EXPECT_LE(tid, 1024u);  // registered-thread ids, not OS tids
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_NE(doc.find("\"name\":\"stress-" + std::to_string(t) + "\""),
              std::string::npos);
  }
  EXPECT_EQ(count_occurrences(doc, R"("name":"inner")"),
            count_occurrences(doc, R"("name":"outer")"));
}

TEST(JobContextTest, ScopedContextInstallsAndRestores) {
  EXPECT_FALSE(current_job_context().active());
  {
    ScopedJobContext outer(JobContext{42, 1, nullptr});
    EXPECT_TRUE(current_job_context().active());
    EXPECT_EQ(current_job_context().trace_id, 42u);
    {
      CostCounters cost;
      ScopedJobContext inner(JobContext{99, 7, &cost});
      EXPECT_EQ(current_job_context().trace_id, 99u);
      EXPECT_EQ(current_job_context().span_id, 7u);
      EXPECT_EQ(current_job_context().cost, &cost);
    }
    // The inner scope restores the outer context, not "no context".
    EXPECT_EQ(current_job_context().trace_id, 42u);
    EXPECT_EQ(current_job_context().cost, nullptr);
  }
  EXPECT_FALSE(current_job_context().active());
}

TEST(JobContextTest, SpansRecordedUnderContextCarryTraceId) {
  ObservabilityOff guard;
  TraceRecorder::instance().clear();
  TraceRecorder::instance().enable();
  {
    ScopedJobContext scope(JobContext{12345, 6, nullptr});
    CODELAYOUT_SPAN("traced", "test", {"extra", "arg"});
  }
  { CODELAYOUT_SPAN("untraced", "test"); }
  const std::string doc = TraceRecorder::instance().export_chrome_trace();
  std::string error;
  ASSERT_TRUE(json_is_valid(doc, &error)) << error;
  // The context-tagged span carries decimal trace/span ids alongside its own
  // args; the context-free span carries neither.
  const std::size_t traced = doc.find(R"("name":"traced")");
  const std::size_t untraced = doc.find(R"("name":"untraced")");
  ASSERT_NE(traced, std::string::npos);
  ASSERT_NE(untraced, std::string::npos);
  EXPECT_NE(doc.find(R"("trace_id":"12345")"), std::string::npos) << doc;
  EXPECT_NE(doc.find(R"("span_id":"6")"), std::string::npos);
  EXPECT_NE(doc.find(R"("extra":"arg")"), std::string::npos);
  EXPECT_EQ(count_occurrences(doc, R"("trace_id")"), 1u);
}

TEST(TraceRecorderTest, ExportOptionsControlPidNameAndTimebase) {
  TraceRecorder recorder;
  recorder.enable();
  recorder.record_span("s", "test", 5000, 100, {});
  // Default export: pid 1, timestamps relative to the earliest span, no
  // process_name metadata. Must be byte-identical to the no-options call.
  const std::string plain = recorder.export_chrome_trace();
  EXPECT_EQ(plain, recorder.export_chrome_trace(TraceExportOptions{}));
  EXPECT_NE(plain.find(R"("pid":1)"), std::string::npos);
  EXPECT_EQ(plain.find(R"("process_name")"), std::string::npos);

  TraceExportOptions options;
  options.pid = 2;
  options.process_name = "daemon";
  options.absolute_timestamps = true;
  const std::string tagged = recorder.export_chrome_trace(options);
  std::string error;
  ASSERT_TRUE(json_is_valid(tagged, &error)) << error;
  EXPECT_NE(tagged.find(R"("pid":2)"), std::string::npos);
  EXPECT_EQ(tagged.find(R"("pid":1)"), std::string::npos);
  EXPECT_NE(tagged.find(R"("name":"process_name")"), std::string::npos);
  EXPECT_NE(tagged.find(R"("name":"daemon")"), std::string::npos);
  // Absolute timestamps keep the raw steady-clock stamp (5000ns = 5us);
  // the default export rebases against the enable() time instead.
  EXPECT_NE(tagged.find(R"("ts":5,)"), std::string::npos) << tagged;
  EXPECT_EQ(plain.find(R"("ts":5,)"), std::string::npos);
}

TEST(TraceRecorderTest, MergeChromeTracesSplicesBothProcesses) {
  TraceRecorder client;
  client.enable();
  client.record_span("service_call", "service", 1000, 900, {});
  TraceRecorder daemon;
  daemon.set_ring_capacity(2);
  daemon.enable();
  for (int i = 0; i < 5; ++i) {
    daemon.record_span("service_job", "service", 1200 + i, 100, {});
  }

  TraceExportOptions client_options;
  client_options.pid = 1;
  client_options.process_name = "client";
  client_options.absolute_timestamps = true;
  TraceExportOptions daemon_options;
  daemon_options.pid = 2;
  daemon_options.process_name = "daemon";
  daemon_options.absolute_timestamps = true;

  const std::string merged =
      merge_chrome_traces(client.export_chrome_trace(client_options),
                          daemon.export_chrome_trace(daemon_options));
  std::string error;
  ASSERT_TRUE(json_is_valid(merged, &error)) << error << "\n" << merged;
  EXPECT_NE(merged.find(R"("name":"service_call")"), std::string::npos);
  EXPECT_NE(merged.find(R"("name":"service_job")"), std::string::npos);
  EXPECT_NE(merged.find(R"("name":"client")"), std::string::npos);
  EXPECT_NE(merged.find(R"("name":"daemon")"), std::string::npos);
  EXPECT_EQ(count_occurrences(merged, R"("traceEvents")"), 1u);
  // Drop counts sum across the inputs: the daemon ring dropped 3 of 5.
  EXPECT_NE(merged.find(R"("dropped_spans":3)"), std::string::npos) << merged;
}

TEST(TraceRecorderTest, MergeToleratesAnEmptySide) {
  TraceRecorder empty;
  empty.enable();
  TraceRecorder full;
  full.enable();
  full.record_span("only", "test", 10, 5, {});
  const std::string merged = merge_chrome_traces(
      empty.export_chrome_trace(), full.export_chrome_trace());
  std::string error;
  ASSERT_TRUE(json_is_valid(merged, &error)) << error << "\n" << merged;
  EXPECT_NE(merged.find(R"("name":"only")"), std::string::npos);
}

// Observability must never perturb results: the analysis kernels return
// bit-identical outputs with tracing + metrics on and off.
TEST(TraceRecorderTest, KernelResultsIdenticalWithObservabilityOn) {
  ObservabilityOff guard;
  Trace trace(Trace::Granularity::kFunction);
  // Deterministic pseudo-random-ish run pattern over 16 symbols.
  for (int i = 0; i < 2000; ++i) {
    trace.push_run(static_cast<Symbol>((i * 7 + i / 13) % 16),
                   1 + (i * 5) % 9);
  }

  TraceRecorder::instance().disable();
  MetricsRegistry::global().set_enabled(false);
  const Trg baseline_trg = Trg::build(trace, TrgConfig{.window_entries = 32});
  const FootprintCurve baseline_fp = FootprintCurve::compute(trace, {});

  TraceRecorder::instance().enable();
  MetricsRegistry::global().set_enabled(true);
  const Trg traced_trg = Trg::build(trace, TrgConfig{.window_entries = 32});
  const FootprintCurve traced_fp = FootprintCurve::compute(trace, {});
  TraceRecorder::instance().disable();
  MetricsRegistry::global().set_enabled(false);

  ASSERT_EQ(baseline_trg.node_count(), traced_trg.node_count());
  ASSERT_EQ(baseline_trg.edge_count(), traced_trg.edge_count());
  for (Symbol a = 0; a < 16; ++a) {
    for (Symbol b = 0; b < 16; ++b) {
      if (a == b) continue;
      EXPECT_EQ(baseline_trg.edge_weight(a, b), traced_trg.edge_weight(a, b));
    }
  }
  ASSERT_EQ(baseline_fp.trace_length(), traced_fp.trace_length());
  for (double w : {1.0, 10.0, 100.0, 1000.0}) {
    EXPECT_EQ(baseline_fp.at(w), traced_fp.at(w));  // bit-identical doubles
  }
}

}  // namespace
}  // namespace codelayout
