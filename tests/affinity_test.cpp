#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "affinity/analysis.hpp"
#include "affinity/hierarchy_builder.hpp"
#include "affinity/naive.hpp"
#include "helpers.hpp"
#include "support/rng.hpp"

namespace codelayout {
namespace {

using testing::fig1_trace;
using testing::make_trace;

std::set<std::uint64_t> pair_set(const std::vector<std::uint64_t>& v) {
  return {v.begin(), v.end()};
}

std::uint64_t key(Symbol a, Symbol b) { return detail::pair_key(a, b); }

// ---------- window footprint (Definition 2) ---------------------------------

TEST(WindowFootprint, PaperExample) {
  // Trace B1 B3 B2 B3 B4: fp<B1@0, B2@2> = |{B1,B3,B2}| = 3.
  const Trace t = make_trace({1, 3, 2, 3, 4});
  EXPECT_EQ(window_footprint(t, 0, 2), 3u);
  EXPECT_EQ(window_footprint(t, 0, 0), 1u);
  EXPECT_EQ(window_footprint(t, 1, 3), 2u);
  EXPECT_EQ(window_footprint(t, 0, 4), 4u);
}

// ---------- Definition 3 exact affinity --------------------------------------

TEST(NaiveAffinity, Fig1PairsAtW2) {
  const Trace t = fig1_trace();
  EXPECT_TRUE(naive_w_affine(t, 3, 5, 2));
  EXPECT_FALSE(naive_w_affine(t, 1, 4, 2));
  EXPECT_FALSE(naive_w_affine(t, 2, 3, 2));
}

TEST(NaiveAffinity, Fig1PairsAtW3) {
  const Trace t = fig1_trace();
  // The paper: at w=3 both (B3,B5) and (B2,B3) are affine pairs.
  EXPECT_TRUE(naive_w_affine(t, 3, 5, 3));
  EXPECT_TRUE(naive_w_affine(t, 2, 3, 3));
  EXPECT_TRUE(naive_w_affine(t, 1, 4, 3));
  // But B2,B5 are not (B2@2 has no B5 within footprint 3).
  EXPECT_FALSE(naive_w_affine(t, 2, 5, 3));
}

TEST(NaiveAffinity, Fig1PairsAtW4) {
  const Trace t = fig1_trace();
  EXPECT_TRUE(naive_w_affine(t, 2, 3, 4));
  EXPECT_TRUE(naive_w_affine(t, 2, 5, 4));
  EXPECT_TRUE(naive_w_affine(t, 3, 5, 4));
  EXPECT_TRUE(naive_w_affine(t, 1, 4, 4));
  // (B1,B2) is pairwise affine at w=4 under Definition 3, yet the paper's
  // partition keeps them apart: merging {B1,B4} with B2 would need (B4,B2),
  // whose B4@9 occurrence has no B2 within footprint 4.
  EXPECT_TRUE(naive_w_affine(t, 1, 2, 4));
  EXPECT_FALSE(naive_w_affine(t, 4, 2, 4));
}

TEST(NaiveAffinity, SelfAffinityAndMissingSymbols) {
  const Trace t = fig1_trace();
  EXPECT_TRUE(naive_w_affine(t, 3, 3, 2));
  EXPECT_FALSE(naive_w_affine(t, 3, 99, 100));
}

TEST(NaiveAffinity, MonotoneInW) {
  const Trace t = fig1_trace();
  for (Symbol a = 1; a <= 5; ++a) {
    for (Symbol b = a + 1; b <= 5; ++b) {
      bool prev = false;
      for (std::uint32_t w = 2; w <= 6; ++w) {
        const bool now = naive_w_affine(t, a, b, w);
        EXPECT_TRUE(!prev || now) << a << "," << b << " w=" << w;
        prev = now;
      }
    }
  }
}

// ---------- fast analysis ----------------------------------------------------

TEST(FastAffinity, MatchesNaiveOnFig1) {
  const Trace t = fig1_trace();
  for (std::uint32_t w : {2u, 3u, 4u, 5u}) {
    EXPECT_EQ(pair_set(affine_pairs_at(t, w)),
              pair_set(naive_affine_pairs_at(t, w)))
        << "w=" << w;
  }
}

TEST(FastAffinity, Fig1AtW2OnlyB3B5) {
  const auto pairs = affine_pairs_at(fig1_trace(), 2);
  EXPECT_EQ(pair_set(pairs), std::set<std::uint64_t>{key(3, 5)});
}

TEST(FastAffinity, RequiresTrimmedTrace) {
  const Trace t = make_trace({1, 1, 2});
  EXPECT_THROW(affine_pairs_at(t, 2), ContractError);
}

/// Exactness property: the sliding-window analysis computes exactly the
/// Definition-3 relation the quadratic reference computes.
class FastVsNaiveTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FastVsNaiveTest, FastEqualsNaive) {
  Rng rng(GetParam());
  Trace raw(Trace::Granularity::kBlock);
  const auto len = 30 + rng.below(150);
  for (std::uint64_t i = 0; i < len; ++i) {
    raw.push_symbol(static_cast<Symbol>(rng.below(8)));
  }
  const Trace t = raw.trimmed();
  if (t.size() < 3) return;
  for (std::uint32_t w : {2u, 3u, 5u, 8u}) {
    EXPECT_EQ(pair_set(affine_pairs_at(t, w)),
              pair_set(naive_affine_pairs_at(t, w)))
        << "w=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastVsNaiveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(FastAffinity, MonotonePairSetsInW) {
  Rng rng(77);
  Trace raw(Trace::Granularity::kBlock);
  for (int i = 0; i < 400; ++i) {
    raw.push_symbol(static_cast<Symbol>(rng.below(12)));
  }
  const Trace t = raw.trimmed();
  std::set<std::uint64_t> prev;
  for (std::uint32_t w : {2u, 3u, 4u, 6u, 9u}) {
    const auto cur = pair_set(affine_pairs_at(t, w));
    for (std::uint64_t p : prev) EXPECT_TRUE(cur.contains(p)) << "w=" << w;
    prev = cur;
  }
}

// ---------- hierarchy (Figure 1) ---------------------------------------------

TEST(Hierarchy, Fig1LayoutOrder) {
  const AffinityHierarchy h = analyze_affinity(
      fig1_trace(), AffinityConfig{.w_values = {2, 3, 4, 5}});
  EXPECT_EQ(h.layout_order(), (std::vector<Symbol>{1, 4, 2, 3, 5}));
}

TEST(Hierarchy, Fig1PartitionLevels) {
  const AffinityHierarchy h = analyze_affinity(
      fig1_trace(), AffinityConfig{.w_values = {2, 3, 4, 5}});

  auto members_at = [&](std::uint32_t w) {
    std::vector<std::vector<Symbol>> out;
    for (std::uint32_t id : h.partition_at(w)) {
      auto m = h.node(id).members;
      std::sort(m.begin(), m.end());
      out.push_back(m);
    }
    return out;
  };

  // w=1: singletons (B1)(B4)(B2)(B3)(B5) in first-appearance order.
  EXPECT_EQ(members_at(1).size(), 5u);
  // w=2: (B3,B5) grouped.
  const auto w2 = members_at(2);
  EXPECT_EQ(w2.size(), 4u);
  EXPECT_NE(std::find(w2.begin(), w2.end(), std::vector<Symbol>{3, 5}),
            w2.end());
  // w=3: (B1,B4) (B2) (B3,B5) — the lower-level group takes precedence.
  const auto w3 = members_at(3);
  EXPECT_EQ(w3.size(), 3u);
  EXPECT_NE(std::find(w3.begin(), w3.end(), std::vector<Symbol>{1, 4}),
            w3.end());
  EXPECT_NE(std::find(w3.begin(), w3.end(), std::vector<Symbol>{3, 5}),
            w3.end());
  // w=4: (B1,B4) (B2,B3,B5).
  const auto w4 = members_at(4);
  EXPECT_EQ(w4.size(), 2u);
  EXPECT_NE(std::find(w4.begin(), w4.end(), std::vector<Symbol>{2, 3, 5}),
            w4.end());
  // w=5: one group of all five.
  EXPECT_EQ(members_at(5).size(), 1u);
}

TEST(Hierarchy, NaiveHierarchyAgreesOnFig1) {
  const AffinityConfig config{.w_values = {2, 3, 4, 5}};
  const AffinityHierarchy fast = analyze_affinity(fig1_trace(), config);
  const AffinityHierarchy exact = naive_hierarchy(fig1_trace(), config);
  EXPECT_EQ(fast.layout_order(), exact.layout_order());
}

TEST(Hierarchy, LayoutOrderIsPermutationOfSymbols) {
  Rng rng(5);
  Trace raw(Trace::Granularity::kBlock);
  for (int i = 0; i < 3000; ++i) {
    raw.push_symbol(static_cast<Symbol>(rng.zipf(40, 0.8)));
  }
  const Trace t = raw.trimmed();
  const auto order = analyze_affinity(t).layout_order();
  std::set<Symbol> in_order(order.begin(), order.end());
  std::set<Symbol> in_trace(t.symbols().begin(), t.symbols().end());
  EXPECT_EQ(order.size(), in_order.size());  // no duplicates
  EXPECT_EQ(in_order, in_trace);             // exactly the trace symbols
}

TEST(Hierarchy, HotnessOrderPutsHotGroupsFirst) {
  // Symbol 9 is far hotter than the rest.
  Trace t(Trace::Granularity::kBlock);
  for (int i = 0; i < 50; ++i) {
    t.push_symbol(1);
    t.push_symbol(9);
  }
  t.push_symbol(2);
  t.push_symbol(3);
  const AffinityHierarchy h = analyze_affinity(t.trimmed());
  const auto order = h.layout_order(AffinityHierarchy::Order::kHotness);
  // The (1,9) pair dominates the trace and must lead the layout.
  EXPECT_TRUE((order[0] == 1 && order[1] == 9) ||
              (order[0] == 9 && order[1] == 1));
}

TEST(Hierarchy, ToStringRendersGroups) {
  const AffinityHierarchy h = analyze_affinity(
      fig1_trace(), AffinityConfig{.w_values = {2, 3, 4, 5}});
  const std::string s = h.to_string();
  EXPECT_NE(s.find("(w="), std::string::npos);
}

TEST(Hierarchy, InvalidConfigRejected) {
  AffinityConfig bad;
  bad.w_values = {4, 3};  // not ascending
  EXPECT_THROW(analyze_affinity(fig1_trace(), bad), ContractError);
  bad.w_values = {1};  // w < 2
  EXPECT_THROW(analyze_affinity(fig1_trace(), bad), ContractError);
  bad.w_values = {};
  EXPECT_THROW(analyze_affinity(fig1_trace(), bad), ContractError);
}

// ---------- Algorithm 1 ------------------------------------------------------

TEST(Algorithm1, PartitionAtW4IsGreedyAndPairwiseAffine) {
  // Algorithm 1 re-partitions from scratch at each w with a greedy pick; in
  // first-appearance order B3 joins {B1,B4} (it is pairwise affine with
  // both), and B5 then joins {B2}. The paper's Figure 1(b) partition
  // ((B1,B4)(B2,B3,B5)) is the *hierarchical* construction where the w=2
  // group (B3,B5) takes precedence — pinned by the Hierarchy tests.
  const auto groups = algorithm1_partition(fig1_trace(), 4);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<Symbol>{1, 4, 3}));
  EXPECT_EQ(groups[1], (std::vector<Symbol>{2, 5}));
  // Validity: every group is pairwise w-affine (Definition 4).
  for (const auto& group : groups) {
    for (Symbol a : group) {
      for (Symbol b : group) {
        EXPECT_TRUE(naive_w_affine(fig1_trace(), a, b, 4));
      }
    }
  }
}

TEST(Algorithm1, SingletonsAtW1Equivalent) {
  // At w=2 on a trace with no affine pairs every block is alone.
  const Trace t = make_trace({1, 2, 3, 1, 3, 2, 1, 2, 3, 2, 1, 3});
  const auto groups = algorithm1_partition(t, 2);
  for (const auto& g : groups) EXPECT_EQ(g.size(), 1u);
}

TEST(Algorithm1, AllTogetherAtHugeW) {
  const auto groups = algorithm1_partition(fig1_trace(), 100);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 5u);
}

}  // namespace
}  // namespace codelayout
