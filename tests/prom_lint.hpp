// Minimal Prometheus text-exposition linter for tests: checks that a dump is
// a sequence of well-formed comment / sample lines, and that every histogram
// family's cumulative buckets are monotone, end in le="+Inf", and agree with
// the family's _count sample. It validates the subset of the format that
// MetricsRegistry::dump_prometheus emits (no HELP text required, no
// timestamps, no exemplars) while rejecting anything structurally wrong.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace codelayout::testing {

class PromLinter {
 public:
  explicit PromLinter(std::string_view text) : text_(text) {}

  /// True when every line is well-formed and every histogram family is
  /// internally consistent.
  bool valid() {
    std::size_t line_no = 0;
    std::size_t pos = 0;
    while (pos < text_.size()) {
      std::size_t eol = text_.find('\n', pos);
      if (eol == std::string_view::npos) {
        return fail(line_no + 1, "missing trailing newline");
      }
      ++line_no;
      const std::string_view line = text_.substr(pos, eol - pos);
      pos = eol + 1;
      if (line.empty()) continue;
      if (line[0] == '#') {
        if (!comment_line(line_no, line)) return false;
      } else {
        if (!sample_line(line_no, line)) return false;
      }
    }
    return histograms_consistent();
  }

  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  struct Bucket {
    std::string le;  ///< the raw le label value ("+Inf" or a number)
    double count = 0.0;
  };
  struct Family {
    std::vector<Bucket> buckets;
    bool has_count = false;
    double count = 0.0;
    bool has_sum = false;
  };

  bool fail(std::size_t line_no, const std::string& what) {
    if (error_.empty()) {
      error_ = line_no == 0
                   ? what
                   : "line " + std::to_string(line_no) + ": " + what;
    }
    return false;
  }

  static bool name_ok(std::string_view name) {
    if (name.empty()) return false;
    if (std::isdigit(static_cast<unsigned char>(name[0]))) return false;
    for (const char c : name) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
          c != ':') {
        return false;
      }
    }
    return true;
  }

  static bool parse_value(std::string_view token, double* out) {
    if (token.empty()) return false;
    if (token == "+Inf" || token == "-Inf" || token == "NaN") {
      *out = 0.0;  // accepted; magnitude irrelevant to the lint
      return true;
    }
    const std::string copy(token);
    char* end = nullptr;
    const double v = std::strtod(copy.c_str(), &end);
    if (end != copy.c_str() + copy.size()) return false;
    *out = v;
    return true;
  }

  bool comment_line(std::size_t line_no, std::string_view line) {
    // "# TYPE <name> <kind>" or "# HELP <name> <text>".
    if (line.substr(0, 7) == "# TYPE ") {
      const std::string_view rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      if (space == std::string_view::npos) {
        return fail(line_no, "TYPE line needs a metric kind");
      }
      const std::string_view name = rest.substr(0, space);
      const std::string_view kind = rest.substr(space + 1);
      if (!name_ok(name)) return fail(line_no, "bad metric name in TYPE");
      if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
          kind != "summary" && kind != "untyped") {
        return fail(line_no, "unknown metric kind '" + std::string(kind) + "'");
      }
      return true;
    }
    if (line.substr(0, 7) == "# HELP ") return true;
    // Bare comments are legal in the exposition format.
    if (line.size() >= 2 && line[1] == ' ') return true;
    return line.size() == 1 || fail(line_no, "malformed comment line");
  }

  bool sample_line(std::size_t line_no, std::string_view line) {
    // <name>[{label="value",...}] <value>
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    const std::string_view name = line.substr(0, i);
    if (!name_ok(name)) {
      return fail(line_no, "bad metric name '" + std::string(name) + "'");
    }
    std::string le;
    bool has_le = false;
    if (i < line.size() && line[i] == '{') {
      const std::size_t close = line.find('}', i);
      if (close == std::string_view::npos) {
        return fail(line_no, "unterminated label set");
      }
      std::string_view labels = line.substr(i + 1, close - i - 1);
      while (!labels.empty()) {
        const std::size_t eq = labels.find('=');
        if (eq == std::string_view::npos) {
          return fail(line_no, "label without '='");
        }
        const std::string_view key = labels.substr(0, eq);
        if (!name_ok(key)) return fail(line_no, "bad label name");
        labels.remove_prefix(eq + 1);
        if (labels.size() < 2 || labels[0] != '"') {
          return fail(line_no, "label value must be quoted");
        }
        const std::size_t endq = labels.find('"', 1);
        if (endq == std::string_view::npos) {
          return fail(line_no, "unterminated label value");
        }
        const std::string_view value = labels.substr(1, endq - 1);
        if (key == "le") {
          le = std::string(value);
          has_le = true;
        }
        labels.remove_prefix(endq + 1);
        if (!labels.empty()) {
          if (labels[0] != ',') return fail(line_no, "expected ',' in labels");
          labels.remove_prefix(1);
        }
      }
      i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ') {
      return fail(line_no, "expected ' ' before sample value");
    }
    double value = 0.0;
    if (!parse_value(line.substr(i + 1), &value)) {
      return fail(line_no, "bad sample value '" +
                               std::string(line.substr(i + 1)) + "'");
    }

    // Histogram bookkeeping keyed by the family (name minus the suffix).
    const std::string n(name);
    if (n.size() > 7 && n.substr(n.size() - 7) == "_bucket") {
      if (!has_le) return fail(line_no, "_bucket sample without an le label");
      families_[n.substr(0, n.size() - 7)].buckets.push_back(
          Bucket{le, value});
    } else if (n.size() > 6 && n.substr(n.size() - 6) == "_count") {
      Family& family = families_[n.substr(0, n.size() - 6)];
      family.has_count = true;
      family.count = value;
    } else if (n.size() > 4 && n.substr(n.size() - 4) == "_sum") {
      families_[n.substr(0, n.size() - 4)].has_sum = true;
    }
    return true;
  }

  bool histograms_consistent() {
    for (const auto& [name, family] : families_) {
      if (family.buckets.empty()) continue;  // _count/_sum without buckets:
                                             // not a histogram family
      double prev = -1.0;
      for (const Bucket& bucket : family.buckets) {
        if (bucket.count < prev) {
          return fail(0, "histogram " + name + " buckets are not cumulative");
        }
        prev = bucket.count;
      }
      if (family.buckets.back().le != "+Inf") {
        return fail(0, "histogram " + name + " is missing an le=\"+Inf\" "
                                             "bucket");
      }
      if (!family.has_count) {
        return fail(0, "histogram " + name + " has buckets but no _count");
      }
      if (family.count != family.buckets.back().count) {
        return fail(0, "histogram " + name +
                           " _count disagrees with the +Inf bucket");
      }
    }
    return true;
  }

  std::string_view text_;
  std::string error_;
  std::map<std::string, Family> families_;
};

inline bool prom_is_valid(std::string_view text, std::string* error = nullptr) {
  PromLinter lint(text);
  const bool ok = lint.valid();
  if (error != nullptr) *error = lint.error();
  return ok;
}

}  // namespace codelayout::testing
