// Cross-validation between independent subsystems: the same cache behaviour
// computed by different machinery must agree. These are the strongest
// correctness anchors in the repository — a bug in either side breaks the
// agreement.
#include <gtest/gtest.h>

#include "cache/icache_sim.hpp"
#include "cache/set_assoc.hpp"
#include "exec/interpreter.hpp"
#include "ir/builder.hpp"
#include "locality/footprint.hpp"
#include "locality/missmodel.hpp"
#include "locality/reuse.hpp"
#include "support/rng.hpp"

namespace codelayout {
namespace {

/// A fully-associative cache is LRU over the whole capacity: its miss count
/// on a trace must equal the reuse-distance prediction exactly.
class FullyAssocVsReuseTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FullyAssocVsReuseTest, SetAssocWithOneSetMatchesReuseDistance) {
  Rng rng(GetParam());
  // One set, associativity = capacity: pure LRU.
  constexpr std::uint32_t kCapacity = 16;
  const CacheGeometry geom{kCapacity * 64, kCapacity, 64};
  SetAssocCache cache(geom);
  ASSERT_EQ(geom.sets(), 1u);

  Trace trace(Trace::Granularity::kBlock);
  for (int i = 0; i < 4000; ++i) {
    trace.push_symbol(static_cast<Symbol>(rng.zipf(48, 0.8)));
  }
  for (Symbol s : trace.symbols()) cache.access(s);

  const ReuseProfile reuse = compute_reuse(trace);
  std::uint64_t predicted = reuse.cold_accesses;
  for (std::uint64_t d = kCapacity; d < reuse.distance_histogram.size(); ++d) {
    predicted += reuse.distance_histogram[d];
  }
  EXPECT_EQ(cache.misses(), predicted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FullyAssocVsReuseTest,
                         ::testing::Values(3, 7, 11, 19));

/// The HOTL footprint-based miss model must approximate the measured LRU
/// miss ratio on loop traces (where it is exact in the limit).
TEST(MissModelVsSimulation, CyclicLoopAgreement) {
  for (Symbol loop_len : {8u, 24u, 48u}) {
    Trace trace(Trace::Granularity::kBlock);
    for (int rep = 0; rep < 400; ++rep) {
      for (Symbol s = 0; s < loop_len; ++s) trace.push_symbol(s);
    }
    const auto fp = FootprintCurve::compute(trace);
    for (std::uint32_t capacity : {16u, 32u}) {
      // Measured: fully-associative LRU.
      const CacheGeometry geom{capacity * 64, capacity, 64};
      SetAssocCache cache(geom);
      for (Symbol s : trace.symbols()) cache.access(s);
      const double measured = cache.miss_ratio();
      const double modeled =
          solo_miss_ratio(fp, static_cast<double>(capacity));
      EXPECT_NEAR(modeled, measured, 0.08)
          << "loop " << loop_len << " capacity " << capacity;
    }
  }
}

/// The Eq. 2 co-run composition against the shared-cache simulation: the
/// model and the simulator must agree on the *direction and rough size* of
/// the interference on line traces.
TEST(MissModelVsSimulation, CorunInterferenceDirection) {
  ModuleBuilder mb("self");
  auto f = mb.function("main");
  std::vector<BlockId> blocks;
  for (int i = 0; i < 300; ++i) blocks.push_back(f.block(64));
  for (std::size_t i = 0; i + 1 < blocks.size(); ++i) {
    f.jump(blocks[i], blocks[i + 1]);
  }
  const BlockId exit = f.block(16);
  f.loop(blocks.back(), blocks.front(), exit, 0.999);
  const Module m = std::move(mb).build();
  const CodeLayout layout = original_layout(m);
  const ProfileResult r1 = profile(m, 1, {.max_events = 30'000});
  const ProfileResult r2 = profile(m, 2, {.max_events = 30'000});

  // Simulation.
  const SimResult solo_sim = simulate_solo(m, layout, r1.block_trace);
  const CorunResult corun_sim =
      simulate_corun(m, layout, r1.block_trace, m, layout, r2.block_trace);

  // Model over the line traces.
  const Trace lines1 = line_trace(m, layout, r1.block_trace, 64);
  const Trace lines2 = line_trace(m, layout, r2.block_trace, 64);
  const auto fp1 = FootprintCurve::compute(lines1);
  const auto fp2 = FootprintCurve::compute(lines2);
  const double capacity = static_cast<double>(kL1I.lines());
  const double model_solo = solo_miss_ratio(fp1, capacity);
  const double model_corun = corun_miss_ratio(fp1, fp2, capacity);

  // Both instruments agree: solo fits (19KB in 32KB), co-run thrashes.
  EXPECT_LT(solo_sim.miss_ratio(), 0.002);
  EXPECT_LT(model_solo, 0.01);
  EXPECT_GT(corun_sim.self.demand_misses, solo_sim.demand_misses * 5);
  EXPECT_GT(model_corun, model_solo);
  EXPECT_GT(model_corun, 0.1);  // near-total thrash per line access
}

}  // namespace
}  // namespace codelayout
