// Adaptive kernel dispatch (DESIGN.md §15): decision unit tests plus the
// cross-path bit-identity sweep.
//
// The unit layer pins the dispatch contract: compression exactly at a
// kernel's threshold takes the run-aware path, force overrides beat the
// comparison, empty and single-run traces sit on the documented sides of
// every default threshold, and decisions are observable through the
// lab.dispatch.* counters.
//
// The sweep layer is the standing proof that dispatch only ever chooses
// between bit-identical implementations: every kernel over every golden
// workload is computed three ways — forced run-aware, forced straight-line,
// and (where golden_suite.inc has one) against the pre-refactor checksum —
// and the pooled kernels (affinity, trg build) additionally at 1/2/8
// threads. Any divergence is a correctness bug, never noise.
#include <cmath>
#include <future>
#include <limits>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "affinity/analysis.hpp"
#include "cache/icache_sim.hpp"
#include "exec/interpreter.hpp"
#include "harness/pipeline.hpp"
#include "helpers.hpp"
#include "layout/layout.hpp"
#include "locality/footprint.hpp"
#include "locality/lru_stack.hpp"
#include "locality/reuse.hpp"
#include "support/registry.hpp"
#include "support/thread_pool.hpp"
#include "trace/dispatch.hpp"
#include "trace/prune.hpp"
#include "trg/graph.hpp"
#include "workloads/spec.hpp"

namespace codelayout {
namespace {

using testing::flat_replay;
using testing::fnv1a;
using testing::hash_footprint;
using testing::hash_reuse;
using testing::hash_sim;
using testing::hash_trg;
using testing::kFnvSeed;
using testing::make_trace;

struct GoldenWorkload {
  const char* name;
  std::uint64_t profile_hash;
  std::uint64_t functions_hash;
  std::uint64_t eval_hash;
  std::uint64_t pruned_hash;
  std::uint64_t kept_events;
  std::uint64_t reuse_hash;
  std::uint64_t footprint_hash;
  std::uint64_t trg_hash;
  std::uint64_t solo_sim_hash;
  std::uint64_t solo_hw_hash;
};

struct GoldenPipeline {
  const char* name;
  std::uint64_t sequence_hash[4];
  std::uint64_t sim_hash[4];
};

#include "golden_suite.inc"

constexpr DispatchKernel kAllKernels[] = {
    DispatchKernel::kLruStack, DispatchKernel::kReuse,
    DispatchKernel::kFootprint, DispatchKernel::kAffinity,
    DispatchKernel::kTrg,       DispatchKernel::kIcacheSolo,
};

// ---- Decision unit tests ----------------------------------------------------

TEST(Dispatch, PathAndKernelNames) {
  EXPECT_STREQ(kernel_path_name(KernelPath::kRunAware), "run");
  EXPECT_STREQ(kernel_path_name(KernelPath::kStraightLine), "flat");
  EXPECT_STREQ(dispatch_kernel_name(DispatchKernel::kLruStack), "lru_stack");
  EXPECT_STREQ(dispatch_kernel_name(DispatchKernel::kReuse), "reuse");
  EXPECT_STREQ(dispatch_kernel_name(DispatchKernel::kFootprint), "footprint");
  EXPECT_STREQ(dispatch_kernel_name(DispatchKernel::kAffinity), "affinity");
  EXPECT_STREQ(dispatch_kernel_name(DispatchKernel::kTrg), "trg");
  EXPECT_STREQ(dispatch_kernel_name(DispatchKernel::kIcacheSolo),
               "icache_solo");
}

TEST(Dispatch, ParseForcedPath) {
  EXPECT_EQ(parse_forced_path("run"), ForcedPath::kRun);
  EXPECT_EQ(parse_forced_path("flat"), ForcedPath::kFlat);
  EXPECT_EQ(parse_forced_path("auto"), ForcedPath::kAuto);
  EXPECT_EQ(parse_forced_path(""), std::nullopt);
  EXPECT_EQ(parse_forced_path("Run"), std::nullopt);
  EXPECT_EQ(parse_forced_path("both"), std::nullopt);
}

TEST(Dispatch, DefaultsAreValidAndFollowTheEnvironment) {
  const AnalysisDispatch dispatch;
  EXPECT_TRUE(dispatch.valid());
  EXPECT_EQ(dispatch.force, forced_path_from_env());
  for (const DispatchKernel kernel : kAllKernels) {
    EXPECT_GE(dispatch.threshold(kernel), 1.0)
        << dispatch_kernel_name(kernel);
  }
}

TEST(Dispatch, RejectsInvalidThresholds) {
  AnalysisDispatch dispatch;
  dispatch.reuse = 0.5;  // a trace never compresses below 1
  EXPECT_FALSE(dispatch.valid());
  dispatch.reuse = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(dispatch.valid());
  dispatch.reuse = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(dispatch.valid());
  dispatch.reuse = 1.0;
  EXPECT_TRUE(dispatch.valid());
}

TEST(Dispatch, CompressionExactlyAtThresholdTakesTheRunPath) {
  Trace t(Trace::Granularity::kBlock);
  t.push_run(1, 3);
  t.push_run(2, 1);  // 4 events over 2 runs: compression exactly 2.0
  ASSERT_DOUBLE_EQ(t.run_compression(), 2.0);

  AnalysisDispatch dispatch;
  dispatch.force = ForcedPath::kAuto;
  dispatch.reuse = 2.0;
  EXPECT_EQ(choose_path(dispatch, DispatchKernel::kReuse, t),
            KernelPath::kRunAware);
  dispatch.reuse = std::nextafter(2.0, 3.0);
  EXPECT_EQ(choose_path(dispatch, DispatchKernel::kReuse, t),
            KernelPath::kStraightLine);
}

TEST(Dispatch, SingleRunTraceGoesRunAwareUnderEveryDefault) {
  Trace t(Trace::Granularity::kBlock);
  t.push_run(7, 1'000);
  ASSERT_DOUBLE_EQ(t.run_compression(), 1'000.0);
  AnalysisDispatch dispatch;
  dispatch.force = ForcedPath::kAuto;
  for (const DispatchKernel kernel : kAllKernels) {
    EXPECT_EQ(choose_path(dispatch, kernel, t), KernelPath::kRunAware)
        << dispatch_kernel_name(kernel);
  }
}

TEST(Dispatch, EmptyAndIncompressibleTracesFollowTheDefaultThresholds) {
  // run_compression() is defined as 1.0 on an empty trace. Every default
  // threshold except reuse and affinity sits strictly above 1
  // (straight-line on both degenerate shapes); reuse's and affinity's
  // run-aware passes measure at or above the flat restatement even at
  // compression 1.0, so their thresholds are exactly 1 and the boundary
  // rule sends them run-aware.
  const Trace empty(Trace::Granularity::kBlock);
  ASSERT_DOUBLE_EQ(empty.run_compression(), 1.0);
  const Trace distinct = make_trace({1, 2, 3, 4, 5});
  ASSERT_DOUBLE_EQ(distinct.run_compression(), 1.0);
  AnalysisDispatch dispatch;
  dispatch.force = ForcedPath::kAuto;
  for (const DispatchKernel kernel : kAllKernels) {
    const KernelPath expected = kernel == DispatchKernel::kReuse ||
                                        kernel == DispatchKernel::kAffinity
                                    ? KernelPath::kRunAware
                                    : KernelPath::kStraightLine;
    EXPECT_EQ(choose_path(dispatch, kernel, empty), expected)
        << dispatch_kernel_name(kernel);
    EXPECT_EQ(choose_path(dispatch, kernel, distinct), expected)
        << dispatch_kernel_name(kernel);
  }
}

TEST(Dispatch, ForceBeatsTheCompressionComparison) {
  Trace compressible(Trace::Granularity::kBlock);
  compressible.push_run(3, 500);
  const Trace incompressible = make_trace({1, 2, 3, 4});

  AnalysisDispatch dispatch;
  dispatch.force = ForcedPath::kFlat;
  EXPECT_EQ(choose_path(dispatch, DispatchKernel::kReuse, compressible),
            KernelPath::kStraightLine);
  dispatch.force = ForcedPath::kRun;
  EXPECT_EQ(choose_path(dispatch, DispatchKernel::kReuse, incompressible),
            KernelPath::kRunAware);
}

TEST(Dispatch, DecisionsBumpTheRegistryCounters) {
  MetricsRegistry& registry = MetricsRegistry::global();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);
  const std::uint64_t run_before =
      registry.counter("lab.dispatch.footprint.run").value();
  const std::uint64_t flat_before =
      registry.counter("lab.dispatch.footprint.flat").value();

  Trace t(Trace::Granularity::kBlock);
  t.push_run(9, 100);
  AnalysisDispatch dispatch;
  dispatch.force = ForcedPath::kRun;
  (void)choose_path(dispatch, DispatchKernel::kFootprint, t);
  dispatch.force = ForcedPath::kFlat;
  (void)choose_path(dispatch, DispatchKernel::kFootprint, t);
  (void)choose_path(dispatch, DispatchKernel::kFootprint, t);

  EXPECT_EQ(registry.counter("lab.dispatch.footprint.run").value(),
            run_before + 1);
  EXPECT_EQ(registry.counter("lab.dispatch.footprint.flat").value(),
            flat_before + 2);
  registry.set_enabled(was_enabled);
}

// ---- Cross-path bit-identity over the golden workload suite -----------------

std::uint64_t hash_hierarchy(const AffinityHierarchy& hierarchy) {
  std::uint64_t h = fnv1a(kFnvSeed, hierarchy.nodes().size());
  for (const AffinityGroup& g : hierarchy.nodes()) {
    h = fnv1a(h, g.id);
    h = fnv1a(h, g.formed_at_w);
    h = fnv1a(h, g.first_occurrence);
    h = fnv1a(h, g.occurrences);
    for (const Symbol s : g.members) h = fnv1a(h, s);
    for (const std::uint32_t c : g.children) h = fnv1a(h, c);
  }
  for (const std::uint32_t r : hierarchy.roots()) h = fnv1a(h, r);
  return h;
}

/// Every kernel over one workload, computed under forced run-aware and
/// forced straight-line dispatch (and, for the pooled kernels, at 1/2/8
/// threads); mismatches against each other or the golden checksums are
/// appended to `failures`.
void check_workload_cross_path(const GoldenWorkload& row,
                               const PipelineConfig& config,
                               std::vector<std::string>& failures) {
  const auto fail = [&](const char* what) {
    failures.push_back(std::string(row.name) + ": " + what);
  };
  AnalysisDispatch run;
  run.force = ForcedPath::kRun;
  AnalysisDispatch flat;
  flat.force = ForcedPath::kFlat;

  const WorkloadSpec& spec = find_spec(row.name);
  const Module module = build_workload(spec);
  const Trace trace =
      profile(module, config.profile_seed,
              {.max_events = spec.profile_events, .max_call_depth = 64})
          .block_trace;

  // LRU replay: run vs flat vs the longhand per-event touch loop.
  {
    LruStack ref_stack(trace.symbol_space());
    std::uint64_t ref = 0;
    for (const Symbol s : trace.symbols()) ref += ref_stack.touch(s) ? 1 : 0;
    LruStack run_stack(trace.symbol_space());
    LruStack flat_stack(trace.symbol_space());
    if (replay_lru_hits(trace, run_stack, run) != ref) {
      fail("lru_stack run path diverged from per-event replay");
    }
    if (replay_lru_hits(trace, flat_stack, flat) != ref) {
      fail("lru_stack flat path diverged from per-event replay");
    }
  }

  // Reuse / footprint: both paths must reproduce the pre-refactor golden
  // checksum, which doubles as the per-event reference (the goldens were
  // captured from per-event code).
  if (hash_reuse(compute_reuse(trace, run)) != row.reuse_hash) {
    fail("reuse run path diverged from the golden checksum");
  }
  if (hash_reuse(compute_reuse(trace, flat)) != row.reuse_hash) {
    fail("reuse flat path diverged from the golden checksum");
  }
  if (hash_footprint(FootprintCurve::compute(trace, {}, run)) !=
      row.footprint_hash) {
    fail("footprint run path diverged from the golden checksum");
  }
  if (hash_footprint(FootprintCurve::compute(trace, {}, flat)) !=
      row.footprint_hash) {
    fail("footprint flat path diverged from the golden checksum");
  }

  // TRG build over the pruned trace: both paths, 1/2/8 threads, all equal
  // to the golden checksum.
  const PruneResult pruned = prune_to_hot(trace, config.prune_top_k);
  const std::uint32_t window =
      trg_window_entries(config.trg_cache_bytes, config.trg_block_bytes);
  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    ThreadPool local(threads);
    ThreadPool* pool = threads > 1 ? &local : nullptr;
    for (const AnalysisDispatch& dispatch : {run, flat}) {
      const Trg graph = Trg::build(pruned.trace,
                                   TrgConfig{.window_entries = window,
                                             .pool = pool,
                                             .dispatch = dispatch});
      if (hash_trg(graph) != row.trg_hash) {
        failures.push_back(
            std::string(row.name) + ": trg " +
            (dispatch.force == ForcedPath::kRun ? "run" : "flat") +
            " path diverged from the golden checksum at " +
            std::to_string(threads) + " threads");
      }
    }
  }

  // Affinity hierarchy: no golden row exists, so anchor on the serial
  // run-path result and demand both paths match it at every pool width. A
  // trimmed w-grid keeps the sweep affordable on single-core runners; the
  // full grid's cross-thread identity is pinned by analysis_parallel_test.
  const Trace trimmed = trace.trimmed();
  const std::vector<std::uint32_t> w_grid = {2, 6, 20};
  std::uint64_t affinity_ref = 0;
  {
    AffinityConfig ref_config;
    ref_config.w_values = w_grid;
    ref_config.dispatch = run;
    affinity_ref = hash_hierarchy(analyze_affinity(trimmed, ref_config));
  }
  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    ThreadPool local(threads);
    for (const AnalysisDispatch& dispatch : {run, flat}) {
      AffinityConfig aff;
      aff.w_values = w_grid;
      aff.pool = threads > 1 ? &local : nullptr;
      aff.dispatch = dispatch;
      if (hash_hierarchy(analyze_affinity(trimmed, aff)) != affinity_ref) {
        failures.push_back(
            std::string(row.name) + ": affinity " +
            (dispatch.force == ForcedPath::kRun ? "run" : "flat") +
            " path diverged at " + std::to_string(threads) + " threads");
      }
    }
  }

  // Icache solo over the eval trace: both paths against the golden.
  const Trace eval =
      profile(module, config.eval_seed,
              {.max_events = spec.eval_events, .max_call_depth = 64})
          .block_trace;
  const CodeLayout layout = original_layout(module);
  for (const AnalysisDispatch& dispatch : {run, flat}) {
    SimOptions options;
    options.dispatch = dispatch;
    if (hash_sim(simulate_solo(module, layout, eval, options)) !=
        row.solo_sim_hash) {
      failures.push_back(
          std::string(row.name) + ": icache solo " +
          (dispatch.force == ForcedPath::kRun ? "run" : "flat") +
          " path diverged from the golden checksum");
    }
    SimOptions hw = hardware_proxy_options();
    hw.dispatch = dispatch;
    if (hash_sim(simulate_solo(module, layout, eval, hw)) !=
        row.solo_hw_hash) {
      failures.push_back(
          std::string(row.name) + ": icache hw proxy " +
          (dispatch.force == ForcedPath::kRun ? "run" : "flat") +
          " path diverged from the golden checksum");
    }
  }
}

TEST(CrossPath, EveryKernelBitIdenticalOnEveryGoldenWorkload) {
  const PipelineConfig config;
  ThreadPool pool(ThreadPool::default_threads());
  std::mutex mu;
  std::vector<std::string> failures;
  std::vector<std::future<void>> pending;
  for (const GoldenWorkload& row : kGoldenWorkloads) {
    pending.push_back(pool.submit([&row, &config, &mu, &failures] {
      std::vector<std::string> local;
      check_workload_cross_path(row, config, local);
      if (!local.empty()) {
        const std::lock_guard<std::mutex> lock(mu);
        for (std::string& f : local) failures.push_back(std::move(f));
      }
    }));
  }
  for (auto& p : pending) p.get();
  for (const std::string& f : failures) ADD_FAILURE() << f;
}

// A rebuilt-per-event trace dispatches and hashes identically: the flat
// replay of a trace is the trace.
TEST(CrossPath, FlatReplayDispatchesIdentically) {
  Trace t(Trace::Granularity::kBlock);
  for (int i = 0; i < 100; ++i) {
    t.push_run(static_cast<Symbol>(i % 7), 1 + (i % 5));
  }
  const Trace replayed = flat_replay(t);
  ASSERT_EQ(replayed, t);
  ASSERT_DOUBLE_EQ(replayed.run_compression(), t.run_compression());
  AnalysisDispatch dispatch;
  dispatch.force = ForcedPath::kAuto;
  for (const DispatchKernel kernel : kAllKernels) {
    EXPECT_EQ(choose_path(dispatch, kernel, t),
              choose_path(dispatch, kernel, replayed))
        << dispatch_kernel_name(kernel);
  }
}

}  // namespace
}  // namespace codelayout
