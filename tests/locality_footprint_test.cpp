#include <unordered_set>

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "locality/footprint.hpp"
#include "support/rng.hpp"

namespace codelayout {
namespace {

using testing::make_trace;

/// Brute force: average over all length-w windows of the (weighted) number
/// of distinct symbols inside.
double brute_fp(const Trace& t, std::size_t w,
                const std::vector<std::uint32_t>& weights = {}) {
  const auto symbols = t.symbols();
  if (w == 0 || symbols.size() < w) return 0.0;
  double total = 0.0;
  for (std::size_t start = 0; start + w <= symbols.size(); ++start) {
    std::unordered_set<Symbol> distinct;
    for (std::size_t i = start; i < start + w; ++i) {
      distinct.insert(symbols[i]);
    }
    for (Symbol s : distinct) {
      total += weights.empty() ? 1.0 : static_cast<double>(weights[s]);
    }
  }
  return total / static_cast<double>(symbols.size() - w + 1);
}

TEST(Footprint, TinyHandExample) {
  // Trace a b a: fp(1)=1, fp(2)=2, fp(3)=2.
  const Trace t = make_trace({0, 1, 0});
  const auto fp = FootprintCurve::compute(t);
  EXPECT_DOUBLE_EQ(fp.at(1), 1.0);
  EXPECT_DOUBLE_EQ(fp.at(2), 2.0);
  EXPECT_DOUBLE_EQ(fp.at(3), 2.0);
  EXPECT_DOUBLE_EQ(fp.max_footprint(), 2.0);
}

TEST(Footprint, SingleSymbol) {
  const Trace t = make_trace({7, 7, 7, 7});
  const auto fp = FootprintCurve::compute(t);
  for (int w = 1; w <= 4; ++w) EXPECT_DOUBLE_EQ(fp.at(w), 1.0);
}

TEST(Footprint, EmptyTrace) {
  const Trace t(Trace::Granularity::kBlock);
  const auto fp = FootprintCurve::compute(t);
  EXPECT_EQ(fp.trace_length(), 0u);
  EXPECT_DOUBLE_EQ(fp.at(5), 0.0);
}

class FootprintPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FootprintPropertyTest, MatchesBruteForce) {
  Rng rng(GetParam());
  Trace t(Trace::Granularity::kBlock);
  const auto len = 20 + rng.below(120);
  for (std::uint64_t i = 0; i < len; ++i) {
    t.push_symbol(static_cast<Symbol>(rng.below(12)));
  }
  const auto fp = FootprintCurve::compute(t);
  for (std::size_t w = 1; w <= t.size(); w += 1 + w / 7) {
    ASSERT_NEAR(fp.at(static_cast<double>(w)), brute_fp(t, w), 1e-9)
        << "w=" << w << " len=" << t.size();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FootprintPropertyTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

TEST_P(FootprintPropertyTest, WeightedMatchesBruteForce) {
  Rng rng(GetParam() + 1000);
  Trace t(Trace::Granularity::kBlock);
  for (int i = 0; i < 80; ++i) {
    t.push_symbol(static_cast<Symbol>(rng.below(8)));
  }
  std::vector<std::uint32_t> weights(8);
  for (auto& w : weights) w = 1 + static_cast<std::uint32_t>(rng.below(9));
  const auto fp = FootprintCurve::compute(t, weights);
  for (std::size_t w = 1; w <= t.size(); w += 5) {
    ASSERT_NEAR(fp.at(static_cast<double>(w)), brute_fp(t, w, weights), 1e-9);
  }
}

TEST(Footprint, MonotoneNonDecreasing) {
  Rng rng(77);
  Trace t(Trace::Granularity::kBlock);
  for (int i = 0; i < 5000; ++i) {
    t.push_symbol(static_cast<Symbol>(rng.zipf(100, 1.0)));
  }
  const auto fp = FootprintCurve::compute(t);
  const auto values = fp.values();
  for (std::size_t w = 1; w < values.size(); ++w) {
    ASSERT_GE(values[w] + 1e-9, values[w - 1]) << "w=" << w;
  }
}

TEST(Footprint, InterpolationBetweenIntegers) {
  const Trace t = make_trace({0, 1, 0});
  const auto fp = FootprintCurve::compute(t);
  EXPECT_NEAR(fp.at(1.5), 1.5, 1e-12);
}

TEST(Footprint, FillTimeIsInverseOfAt) {
  Rng rng(88);
  Trace t(Trace::Granularity::kBlock);
  for (int i = 0; i < 2000; ++i) {
    t.push_symbol(static_cast<Symbol>(rng.below(64)));
  }
  const auto fp = FootprintCurve::compute(t);
  for (double c : {1.0, 5.0, 20.0, 50.0}) {
    const double w = fp.fill_time(c);
    EXPECT_NEAR(fp.at(w), c, 0.05) << "c=" << c;
  }
  EXPECT_DOUBLE_EQ(fp.fill_time(0.0), 0.0);
  EXPECT_DOUBLE_EQ(fp.fill_time(1e9),
                   static_cast<double>(fp.trace_length()));
}

TEST(Footprint, DerivativeIsNonNegativeAndDecays) {
  Rng rng(99);
  Trace t(Trace::Granularity::kBlock);
  for (int i = 0; i < 5000; ++i) {
    t.push_symbol(static_cast<Symbol>(rng.zipf(50, 0.9)));
  }
  const auto fp = FootprintCurve::compute(t);
  const double early = fp.derivative(2);
  const double late = fp.derivative(3000);
  EXPECT_GE(early, 0.0);
  EXPECT_GE(late, 0.0);
  EXPECT_GT(early, late);  // concave curve: slope decays
}

}  // namespace
}  // namespace codelayout
