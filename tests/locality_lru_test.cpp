#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "locality/lru_stack.hpp"
#include "support/rng.hpp"

namespace codelayout {
namespace {

std::vector<Symbol> top_of(const LruStack& stack, std::size_t k) {
  std::vector<Symbol> out;
  stack.for_top(k, [&](Symbol s) { out.push_back(s); });
  return out;
}

TEST(LruStack, TouchReportsResidency) {
  LruStack s(8);
  EXPECT_FALSE(s.touch(3));
  EXPECT_TRUE(s.touch(3));
  EXPECT_TRUE(s.resident(3));
  EXPECT_FALSE(s.resident(4));
}

TEST(LruStack, RecencyOrder) {
  LruStack s(8);
  s.touch(1);
  s.touch(2);
  s.touch(3);
  EXPECT_EQ(top_of(s, 8), (std::vector<Symbol>{3, 2, 1}));
  s.touch(1);  // move to front
  EXPECT_EQ(top_of(s, 8), (std::vector<Symbol>{1, 3, 2}));
  EXPECT_EQ(s.top(), 1u);
}

TEST(LruStack, ForTopLimitsCount) {
  LruStack s(8);
  for (Symbol i = 0; i < 5; ++i) s.touch(i);
  EXPECT_EQ(top_of(s, 2).size(), 2u);
}

TEST(LruStack, ForAboveEnumeratesSinceLastOccurrence) {
  LruStack s(8);
  s.touch(1);
  s.touch(2);
  s.touch(3);
  std::vector<Symbol> above;
  s.for_above(1, [&](Symbol x) {
    above.push_back(x);
    return true;
  });
  EXPECT_EQ(above, (std::vector<Symbol>{3, 2}));
}

TEST(LruStack, ForAboveEarlyStop) {
  LruStack s(8);
  s.touch(1);
  s.touch(2);
  s.touch(3);
  std::vector<Symbol> above;
  s.for_above(1, [&](Symbol x) {
    above.push_back(x);
    return false;  // stop immediately
  });
  EXPECT_EQ(above.size(), 1u);
}

TEST(LruStack, DepthOf) {
  LruStack s(8);
  s.touch(5);
  s.touch(6);
  s.touch(7);
  EXPECT_EQ(s.depth_of(7), 0u);
  EXPECT_EQ(s.depth_of(6), 1u);
  EXPECT_EQ(s.depth_of(5), 2u);
}

TEST(LruStack, WeightedEviction) {
  const std::vector<std::uint32_t> weights = {10, 20, 30, 40};
  LruStack s(4, weights);
  s.touch(0);
  s.touch(1);
  s.touch(2);  // weight 60
  EXPECT_EQ(s.resident_weight(), 60u);
  s.evict_to_weight(50);
  // Evicts from the bottom: symbol 0 (oldest, weight 10) goes first.
  EXPECT_FALSE(s.resident(0));
  EXPECT_EQ(s.resident_weight(), 50u);
  s.evict_to_weight(30);
  EXPECT_FALSE(s.resident(1));
  EXPECT_TRUE(s.resident(2));
  s.evict_to_weight(29);  // 30 > 29: the last symbol goes too
  EXPECT_FALSE(s.resident(2));
  EXPECT_EQ(s.resident_count(), 0u);
}

TEST(LruStack, DefaultWeightIsOne) {
  LruStack s(16);
  for (Symbol i = 0; i < 10; ++i) s.touch(i);
  EXPECT_EQ(s.resident_weight(), 10u);
  EXPECT_EQ(s.resident_count(), 10u);
  s.evict_to_weight(4);
  EXPECT_EQ(s.resident_count(), 4u);
  EXPECT_EQ(top_of(s, 16), (std::vector<Symbol>{9, 8, 7, 6}));
}

TEST(LruStack, ClearEmptiesEverything) {
  LruStack s(8);
  s.touch(1);
  s.touch(2);
  s.clear();
  EXPECT_EQ(s.resident_count(), 0u);
  EXPECT_FALSE(s.resident(1));
  EXPECT_EQ(top_of(s, 8).size(), 0u);
  // Usable again after clear.
  s.touch(2);
  EXPECT_EQ(s.top(), 2u);
}

TEST(LruStack, WeightsSizeMismatchRejected) {
  const std::vector<std::uint32_t> weights = {1, 2};
  EXPECT_THROW(LruStack(4, weights), ContractError);
}

/// Property: against a reference deque model over random traces.
class LruStackPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LruStackPropertyTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  constexpr Symbol kSpace = 32;
  LruStack stack(kSpace);
  std::deque<Symbol> model;  // front = MRU

  for (int step = 0; step < 2000; ++step) {
    const auto s = static_cast<Symbol>(rng.below(kSpace));
    const bool was_resident = stack.touch(s);
    const auto it = std::find(model.begin(), model.end(), s);
    EXPECT_EQ(was_resident, it != model.end());
    if (it != model.end()) model.erase(it);
    model.push_front(s);
    if (rng.chance(0.05)) {
      const std::uint64_t cap = 1 + rng.below(kSpace);
      stack.evict_to_weight(cap);
      while (model.size() > cap) model.pop_back();
    }
    ASSERT_EQ(stack.resident_count(), model.size());
    ASSERT_EQ(top_of(stack, model.size()),
              std::vector<Symbol>(model.begin(), model.end()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruStackPropertyTest,
                         ::testing::Values(1, 2, 3, 17, 99));

// ---------- snapshot / restore ---------------------------------------------

TEST(LruStackSnapshot, RoundTripsExactState) {
  LruStack stack(8);
  for (Symbol s : {3u, 1u, 4u, 1u, 5u}) stack.touch(s);
  const std::vector<Symbol> snap = stack.snapshot();
  EXPECT_EQ(snap, (std::vector<Symbol>{5, 1, 4, 3}));  // topmost first

  LruStack copy(8);
  copy.touch(7);  // restore must discard prior state
  copy.restore(snap);
  EXPECT_EQ(copy.snapshot(), snap);
  EXPECT_EQ(copy.resident_count(), stack.resident_count());
  EXPECT_EQ(copy.resident_weight(), stack.resident_weight());
  EXPECT_EQ(copy.top(), stack.top());
}

TEST(LruStackSnapshot, RestoredStackEvolvesLikeTheOriginal) {
  // The sharded TRG build's contract: a stack restored at a cut point must
  // be indistinguishable from the serial stack from then on, under the same
  // touch + evict_to_weight schedule.
  Rng rng(77);
  constexpr Symbol kSpace = 48;
  constexpr std::uint64_t kCap = 12;
  LruStack serial(kSpace);
  std::vector<Symbol> events;
  for (int i = 0; i < 3'000; ++i) {
    events.push_back(static_cast<Symbol>(rng.zipf(kSpace, 0.7)));
  }
  for (std::size_t cut : {std::size_t{0}, std::size_t{5}, std::size_t{700},
                          std::size_t{2'999}}) {
    serial.clear();
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (i == cut) {
        LruStack resumed(kSpace);
        resumed.restore(serial.snapshot());
        for (std::size_t j = cut; j < events.size(); ++j) {
          resumed.touch(events[j]);
          resumed.evict_to_weight(kCap);
        }
        LruStack straight(kSpace);
        for (const Symbol s : events) {
          straight.touch(s);
          straight.evict_to_weight(kCap);
        }
        ASSERT_EQ(resumed.snapshot(), straight.snapshot()) << "cut " << cut;
      }
      serial.touch(events[i]);
      serial.evict_to_weight(kCap);
    }
  }
}

TEST(LruStackSnapshot, RestoreEmptyClears) {
  LruStack stack(4);
  stack.touch(2);
  stack.restore({});
  EXPECT_EQ(stack.resident_count(), 0u);
  EXPECT_EQ(stack.snapshot(), std::vector<Symbol>{});
}

}  // namespace
}  // namespace codelayout
