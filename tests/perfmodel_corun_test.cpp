// Analytic co-run screening (perfmodel/corun_predictor.hpp) and the
// cache-aware co-scheduler (perfmodel/scheduler.hpp):
//
//   * FootprintBuilder reproduces FootprintCurve::compute over the trimmed
//     flat trace bit for bit — the streaming kernel the solo profiles ride.
//   * Predictions are deterministic and land within the documented error
//     envelope of the bit-exact simulator on a golden workload subset
//     (BENCH_predictor.json pins the full-matrix numbers; the CI floor is
//     --predictor-floor 0.05:50).
//   * The greedy + local-search scheduler finds brute-force optima on small
//     instances, refines away greedy mistakes, and is deterministic.
//   * Hierarchy edge cases: zero-footprint and single-line programs, an L2
//     smaller than the combined footprints, degenerate one-set geometries.
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "harness/lab.hpp"
#include "helpers.hpp"
#include "locality/footprint.hpp"
#include "perfmodel/corun_predictor.hpp"
#include "perfmodel/scheduler.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace codelayout {
namespace {

using testing::hash_footprint;

// ---- FootprintBuilder vs the reference compute ------------------------------

struct Span {
  Symbol first;
  std::uint32_t count;
  std::uint64_t repeats;
};

/// The reference path: materialize the flat symbol stream, trim consecutive
/// duplicates (exactly what line_trace() does), compute the curve.
FootprintCurve reference_curve(const std::vector<Span>& spans,
                               std::uint64_t* trimmed_length = nullptr) {
  Trace flat(Trace::Granularity::kBlock);
  for (const Span& s : spans) {
    for (std::uint64_t r = 0; r < s.repeats; ++r) {
      for (std::uint32_t l = 0; l < s.count; ++l) flat.push_symbol(s.first + l);
    }
  }
  const Trace trimmed = flat.trimmed();
  if (trimmed_length != nullptr) *trimmed_length = trimmed.size();
  return FootprintCurve::compute(trimmed);
}

FootprintCurve builder_curve(const std::vector<Span>& spans, Symbol space,
                             std::uint64_t* positions = nullptr) {
  FootprintBuilder builder(space);
  for (const Span& s : spans) builder.span(s.first, s.count, s.repeats);
  if (positions != nullptr) *positions = builder.positions();
  return std::move(builder).finish();
}

class FootprintBuilderRandomTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FootprintBuilderRandomTest, BitIdenticalToTrimmedCompute) {
  Rng rng(GetParam());
  std::vector<Span> spans;
  Symbol space = 0;
  const std::uint64_t n = 10 + rng.below(60);
  for (std::uint64_t i = 0; i < n; ++i) {
    // Overlapping spans exercise the trimming seam between adjacent blocks
    // sharing a boundary line; repeats exercise the O(1) tail collapse.
    const Span s{static_cast<Symbol>(rng.below(40)),
                 static_cast<std::uint32_t>(1 + rng.below(6)),
                 1 + rng.below(5)};
    spans.push_back(s);
    space = std::max(space, s.first + s.count);
  }
  std::uint64_t trimmed_length = 0;
  std::uint64_t positions = 0;
  const FootprintCurve want = reference_curve(spans, &trimmed_length);
  const FootprintCurve got = builder_curve(spans, space, &positions);
  ASSERT_EQ(positions, trimmed_length);
  EXPECT_EQ(hash_footprint(got), hash_footprint(want));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FootprintBuilderRandomTest,
                         ::testing::Values(2, 3, 5, 7, 11, 13, 17, 19));

TEST(FootprintBuilder, RepeatedSpanCollapsesWithoutChangingTheCurve) {
  // One 4-line block executed 1000 times: the seam never trims (last line !=
  // first line), so every repetition survives; the builder's histogram bump
  // must equal event-by-event probing.
  const std::vector<Span> spans = {{0, 4, 1000}};
  std::uint64_t trimmed_length = 0;
  std::uint64_t positions = 0;
  const FootprintCurve want = reference_curve(spans, &trimmed_length);
  const FootprintCurve got = builder_curve(spans, 4, &positions);
  ASSERT_EQ(trimmed_length, 4000u);
  ASSERT_EQ(positions, 4000u);
  EXPECT_EQ(hash_footprint(got), hash_footprint(want));
  EXPECT_DOUBLE_EQ(got.max_footprint(), 4.0);
}

TEST(FootprintBuilder, SingleLineRepeatsTrimToOnePosition) {
  std::uint64_t positions = 0;
  const FootprintCurve got = builder_curve({{5, 1, 100}, {5, 1, 3}}, 6,
                                           &positions);
  // All 103 occurrences are consecutive duplicates of one line.
  EXPECT_EQ(positions, 1u);
  EXPECT_DOUBLE_EQ(got.max_footprint(), 1.0);
  EXPECT_EQ(hash_footprint(got),
            hash_footprint(reference_curve({{5, 1, 100}, {5, 1, 3}})));
}

TEST(FootprintBuilder, LargeGapsTakeTheDeferredPath) {
  // Symbol 0 reused across a >32768-position gap of other work: the gap mass
  // lands in the deferred side list, and the finished curve still matches
  // the reference bit for bit.
  std::vector<Span> spans;
  spans.push_back({0, 1, 1});
  for (int i = 0; i < 20; ++i) {
    spans.push_back({1, 3, 600});  // 1800 positions each: total 36000
  }
  spans.push_back({0, 1, 1});
  Symbol space = 4;
  std::uint64_t trimmed_length = 0;
  std::uint64_t positions = 0;
  const FootprintCurve want = reference_curve(spans, &trimmed_length);
  const FootprintCurve got = builder_curve(spans, space, &positions);
  ASSERT_EQ(positions, trimmed_length);
  ASSERT_GT(positions, 32768u);
  EXPECT_EQ(hash_footprint(got), hash_footprint(want));
}

TEST(FootprintBuilder, EmptyStream) {
  FootprintBuilder builder(8);
  builder.span(0, 0, 5);  // zero-width span is a no-op
  builder.span(3, 2, 0);  // zero repeats too
  EXPECT_EQ(builder.positions(), 0u);
  const FootprintCurve curve = std::move(builder).finish();
  EXPECT_EQ(curve.trace_length(), 0u);
  EXPECT_DOUBLE_EQ(curve.max_footprint(), 0.0);
}

// ---- Predictor edge cases (synthetic profiles) ------------------------------

SoloProfile profile_from_spans(const std::vector<Span>& spans, Symbol space,
                               std::uint64_t instructions) {
  SoloProfile profile;
  profile.workload = "synthetic";
  std::uint64_t positions = 0;
  profile.lines = builder_curve(spans, space, &positions);
  profile.line_probes = positions;
  profile.instructions = instructions;
  profile.data_stall_cpi = 0.5;
  return profile;
}

/// A looping program touching `lines` distinct lines per iteration.
SoloProfile loop_profile(Symbol lines, std::uint64_t iterations,
                         std::uint64_t instructions) {
  return profile_from_spans({{0, lines, iterations}}, lines, instructions);
}

TEST(PredictorEdgeCases, ZeroFootprintProgram) {
  const SoloProfile empty = profile_from_spans({}, 0, 0);
  const SoloProfile busy = loop_profile(600, 100, 1000000);
  const CorunPrediction p = predict_corun(empty, busy);
  EXPECT_DOUBLE_EQ(p.self.solo_miss_ratio, 0.0);
  EXPECT_DOUBLE_EQ(p.self.corun_miss_ratio, 0.0);
  EXPECT_DOUBLE_EQ(p.self.predicted_misses, 0.0);
  EXPECT_DOUBLE_EQ(p.self.slowdown(), 1.0);
  // The busy peer is unaffected by an empty partner.
  EXPECT_DOUBLE_EQ(p.peer.corun_miss_ratio, p.peer.solo_miss_ratio);
  EXPECT_DOUBLE_EQ(predicted_solo_misses(empty), 0.0);
}

TEST(PredictorEdgeCases, SingleLineProgramNeverMisses) {
  const SoloProfile tiny = loop_profile(1, 50000, 200000);
  const SoloProfile busy = loop_profile(600, 100, 1000000);
  const CorunPrediction p = predict_corun(tiny, busy);
  // One line always fits; the model's steady-state miss ratio is zero even
  // against a thrashing peer (the single hot line survives by recency).
  EXPECT_DOUBLE_EQ(p.self.solo_miss_ratio, 0.0);
  EXPECT_GE(p.self.corun_miss_ratio, 0.0);
  EXPECT_TRUE(std::isfinite(p.self.corun_miss_ratio));
  EXPECT_GE(p.self.slowdown(), 1.0);
}

TEST(PredictorEdgeCases, L2SmallerThanCombinedFootprints) {
  // l1 = 16 lines, l2 = 32 lines; each program loops over 100+ lines, so the
  // shared L2 is far too small for the pair.
  HierarchySpec hierarchy;
  hierarchy.l1 = CacheGeometry{16 * 64, 4, 64};
  hierarchy.l2 = CacheGeometry{32 * 64, 4, 64};
  hierarchy.validate();
  const SoloProfile a = loop_profile(120, 500, 600000);
  const SoloProfile b = loop_profile(150, 400, 600000);
  const CorunPrediction p = predict_corun(a, b, hierarchy);
  // Private front: co-run front ratio stays the solo one.
  EXPECT_DOUBLE_EQ(p.self.corun_miss_ratio, p.self.solo_miss_ratio);
  EXPECT_DOUBLE_EQ(p.peer.corun_miss_ratio, p.peer.solo_miss_ratio);
  // The shared L2 degrades under contention but its memory rate can never
  // exceed the front's miss stream feeding it.
  EXPECT_GE(p.self.corun_l2_miss_rate, p.self.solo_l2_miss_rate);
  EXPECT_LE(p.self.corun_l2_miss_rate, p.self.corun_miss_ratio + 1e-12);
  EXPECT_TRUE(std::isfinite(p.self.corun_l2_miss_rate));
  EXPECT_GE(p.self.slowdown(), 1.0);
}

TEST(PredictorEdgeCases, DegenerateOneSetGeometry) {
  // 4 lines in a single set: the smallest valid L1. The closed form must
  // stay finite and ordered (co-run never beats solo).
  HierarchySpec hierarchy;
  hierarchy.l1 = CacheGeometry{4 * 64, 4, 64};
  hierarchy.validate();
  ASSERT_EQ(hierarchy.l1.sets(), 1u);
  const SoloProfile a = loop_profile(20, 1000, 100000);
  const SoloProfile b = loop_profile(30, 800, 100000);
  const CorunPrediction p = predict_corun(a, b, hierarchy);
  EXPECT_TRUE(std::isfinite(p.self.corun_miss_ratio));
  EXPECT_TRUE(std::isfinite(p.peer.corun_miss_ratio));
  EXPECT_GE(p.self.corun_miss_ratio, p.self.solo_miss_ratio - 1e-12);
  EXPECT_GE(p.self.corun_cycles, p.self.solo_cycles);
}

TEST(PredictorEdgeCases, PeerSpeedClampsToSimulatorBand) {
  SoloProfile slow = loop_profile(10, 10, 1000);
  SoloProfile fast = loop_profile(10, 10, 1000);
  slow.data_stall_cpi = 100.0;
  fast.data_stall_cpi = 0.0;
  EXPECT_DOUBLE_EQ(corun_peer_speed(slow, fast), 4.0);
  EXPECT_DOUBLE_EQ(corun_peer_speed(fast, slow), 0.25);
}

// ---- Golden-subset accuracy and determinism (real workloads) ----------------

/// The documented envelope: BENCH_predictor.json records full-matrix
/// corun_err_max 0.027; the bound here and in the CI floor is 0.05.
constexpr double kErrorBound = 0.05;

class PredictorGoldenTest : public ::testing::Test {
 protected:
  static constexpr const char* kNames[3] = {"458.sjeng", "471.omnetpp",
                                            "403.gcc"};
  Lab lab_{LabOptions().threads(1)};
};

TEST_F(PredictorGoldenTest, PredictionsAreDeterministicAndMemoized) {
  const CorunPrediction first =
      lab_.predict_corun(kNames[0], std::nullopt, kNames[1], std::nullopt);
  const CorunPrediction second =
      lab_.predict_corun(kNames[0], std::nullopt, kNames[1], std::nullopt);
  EXPECT_EQ(first.self.corun_miss_ratio, second.self.corun_miss_ratio);
  EXPECT_EQ(first.self.solo_miss_ratio, second.self.solo_miss_ratio);
  EXPECT_EQ(first.peer.corun_miss_ratio, second.peer.corun_miss_ratio);
  EXPECT_EQ(first.peer_speed, second.peer_speed);
  // The profile memo means the repeated call rebuilds nothing: the profiles
  // are the same objects.
  const SoloProfile& p1 = lab_.solo_profile(kNames[0], std::nullopt);
  const SoloProfile& p2 = lab_.solo_profile(kNames[0], std::nullopt);
  EXPECT_EQ(&p1, &p2);
}

TEST_F(PredictorGoldenTest, CorunPredictionsWithinDocumentedBound) {
  for (const char* self : kNames) {
    for (const char* peer : kNames) {
      if (self == peer) continue;
      const CorunPrediction predicted =
          lab_.predict_corun(self, std::nullopt, peer, std::nullopt);
      const CorunResult& simulated = lab_.corun(
          self, std::nullopt, peer, std::nullopt, Measure::kSimulator);
      EXPECT_NEAR(predicted.self.corun_miss_ratio,
                  simulated.self.miss_ratio(), kErrorBound)
          << self << " vs " << peer;
    }
  }
}

TEST_F(PredictorGoldenTest, SoloPredictionsWithinDocumentedBound) {
  for (const char* name : kNames) {
    const CorunPrediction predicted =
        lab_.predict_corun(name, std::nullopt, name, std::nullopt);
    const SimResult& simulated =
        lab_.solo(name, std::nullopt, Measure::kSimulator);
    EXPECT_NEAR(predicted.self.solo_miss_ratio, simulated.miss_ratio(),
                kErrorBound)
        << name;
  }
}

TEST_F(PredictorGoldenTest, ProfileMatchesLineTraceStatistics) {
  // The profile's totals must agree with the bit-exact simulator's
  // accounting of the same fetch stream (same plan, same trace).
  const SoloProfile& profile = lab_.solo_profile(kNames[0], std::nullopt);
  const SimResult& sim =
      lab_.solo(kNames[0], std::nullopt, Measure::kSimulator);
  EXPECT_EQ(profile.instructions, sim.instructions);
  // The profile's probe count is over the *trimmed* line trace (Definition
  // 1): consecutive duplicate probes collapse, so it is bounded by the
  // simulator's raw demand probe count.
  EXPECT_GT(profile.line_probes, 0u);
  EXPECT_LT(profile.line_probes, sim.line_probes);
}

// ---- Scheduler --------------------------------------------------------------

PairCostMatrix matrix_from(std::vector<double> solo,
                           std::vector<double> pair) {
  PairCostMatrix costs;
  costs.programs = solo.size();
  costs.solo = std::move(solo);
  costs.pair = std::move(pair);
  CL_CHECK(costs.pair.size() == costs.programs * costs.programs);
  return costs;
}

/// Brute force over every assignment of exactly `need_pairs` disjoint pairs.
double brute_force_best(const PairCostMatrix& costs, std::size_t slots) {
  const std::size_t n = costs.programs;
  const std::size_t need_pairs = n > slots ? n - slots : 0;
  double best = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> partner(n, n);
  auto full = [&](auto&& self, std::size_t index, std::size_t made,
                  double acc) -> void {
    if (made == need_pairs) {
      double total = acc;
      for (std::size_t i = 0; i < n; ++i) {
        if (partner[i] == n) total += costs.solo[i];
      }
      best = std::min(best, total);
      return;
    }
    if (index >= n) return;
    if (partner[index] != n) {
      self(self, index + 1, made, acc);
      return;
    }
    for (std::size_t b = index + 1; b < n; ++b) {
      if (partner[b] != n) continue;
      partner[index] = b;
      partner[b] = index;
      self(self, index + 1, made + 1, acc + costs.cost(index, b));
      partner[index] = n;
      partner[b] = n;
    }
    self(self, index + 1, made, acc);  // index stays solo
  };
  full(full, 0, 0, 0.0);
  return best;
}

TEST(Scheduler, FindsBruteForceOptimumOnRandomInstances) {
  for (std::uint64_t seed : {101u, 202u, 303u, 404u}) {
    Rng rng(seed);
    const std::size_t n = 6;
    std::vector<double> solo(n);
    std::vector<double> pair(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      solo[i] = static_cast<double>(rng.below(1000));
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        // Pairing never reduces misses: cost >= the two solos combined.
        const double cost =
            solo[i] + solo[j] + static_cast<double>(rng.below(2000));
        pair[i * n + j] = cost;
        pair[j * n + i] = cost;
      }
    }
    const PairCostMatrix costs = matrix_from(solo, pair);
    for (std::size_t slots : {3u, 4u, 5u}) {
      const ScheduleResult got = schedule_corun(costs, slots);
      const double want = brute_force_best(costs, slots);
      EXPECT_NEAR(got.predicted_total_misses, want, 1e-9)
          << "seed=" << seed << " slots=" << slots;
    }
  }
}

TEST(Scheduler, RefinementFixesGreedyMistake) {
  // Greedy (by pairing delta) grabs (0,1) first, forcing the terrible (2,3);
  // the cross-pair move repartners to (0,2)(1,3) = 4.
  const PairCostMatrix costs = matrix_from(
      {0, 0, 0, 0}, {0, 1, 2, 9,    //
                     1, 0, 9, 2,    //
                     2, 9, 0, 10,   //
                     9, 2, 10, 0});
  const ScheduleResult result = schedule_corun(costs, 2);
  EXPECT_GE(result.refine_passes, 1u);
  EXPECT_DOUBLE_EQ(result.predicted_total_misses, 4.0);
  ASSERT_EQ(result.pairs.size(), 2u);
  EXPECT_EQ(result.pairs[0], (SchedulePair{0, 2, 2.0}));
  EXPECT_EQ(result.pairs[1], (SchedulePair{1, 3, 2.0}));
}

TEST(Scheduler, EnoughSlotsMeansNobodyPairs) {
  const PairCostMatrix costs =
      matrix_from({5, 7, 9}, std::vector<double>(9, 100.0));
  const ScheduleResult result = schedule_corun(costs, 3);
  EXPECT_TRUE(result.pairs.empty());
  EXPECT_EQ(result.unpaired, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(result.predicted_total_misses, 21.0);
  EXPECT_EQ(result.refine_passes, 0u);
}

TEST(Scheduler, InfeasibleInstanceThrows) {
  const PairCostMatrix costs =
      matrix_from(std::vector<double>(5, 1.0), std::vector<double>(25, 2.0));
  EXPECT_THROW((void)schedule_corun(costs, 2), ContractError);
  EXPECT_THROW((void)schedule_corun(costs, 0), ContractError);
}

TEST(Scheduler, DeterministicAcrossRepeatedRuns) {
  Rng rng(777);
  const std::size_t n = 8;
  std::vector<double> solo(n);
  std::vector<double> pair(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    solo[i] = static_cast<double>(rng.below(500));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double cost =
          solo[i] + solo[j] + static_cast<double>(rng.below(900));
      pair[i * n + j] = cost;
      pair[j * n + i] = cost;
    }
  }
  const PairCostMatrix costs = matrix_from(solo, pair);
  const ScheduleResult a = schedule_corun(costs, 5);
  const ScheduleResult b = schedule_corun(costs, 5);
  EXPECT_EQ(a.pairs, b.pairs);
  EXPECT_EQ(a.unpaired, b.unpaired);
  EXPECT_EQ(a.predicted_total_misses, b.predicted_total_misses);
  EXPECT_EQ(a.refine_passes, b.refine_passes);
}

TEST(Scheduler, TopKPairsRanksByCostDescending) {
  ScheduleResult schedule;
  schedule.pairs = {{0, 1, 10.0}, {2, 3, 30.0}, {4, 5, 20.0}, {6, 7, 30.0}};
  EXPECT_EQ(top_k_pairs(schedule, 2), (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(top_k_pairs(schedule, 10),
            (std::vector<std::size_t>{1, 3, 2, 0}));
  EXPECT_TRUE(top_k_pairs(schedule, 0).empty());
}

TEST(Scheduler, PairCostsFromProfilesAreSymmetric) {
  const SoloProfile a = loop_profile(100, 200, 400000);
  const SoloProfile b = loop_profile(700, 50, 500000);
  const SoloProfile c = loop_profile(300, 80, 300000);
  const std::vector<const SoloProfile*> profiles = {&a, &b, &c};
  const PairCostMatrix costs = compute_pair_costs(profiles);
  ASSERT_EQ(costs.programs, 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(costs.solo[i], 0.0);
    for (std::size_t j = 0; j < 3; ++j) {
      if (i == j) continue;
      EXPECT_EQ(costs.cost(i, j), costs.cost(j, i));
      // Pairing never reduces predicted misses below the two solos.
      EXPECT_GE(costs.cost(i, j),
                costs.solo[i] + costs.solo[j] - 1e-9);
    }
  }
}

}  // namespace
}  // namespace codelayout
