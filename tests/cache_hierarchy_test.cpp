// Tests for composable cache hierarchies (DESIGN.md §13): the HierarchySpec
// value type (validation, text and byte codecs, hashing), CacheLevel miss
// chaining with per-level counters and AMAT, CacheHierarchy front sharing,
// degenerate geometries, and the L2 attribution invariants of the solo and
// co-run simulators.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "cache/hierarchy.hpp"
#include "cache/icache_sim.hpp"
#include "exec/interpreter.hpp"
#include "ir/builder.hpp"

namespace codelayout {
namespace {

// ---- HierarchySpec: the declarative shape -----------------------------------

TEST(HierarchySpec, DefaultIsThePaperConfiguration) {
  const HierarchySpec spec;
  EXPECT_EQ(spec.l1, kL1I);
  EXPECT_FALSE(spec.multi_level());
  EXPECT_EQ(spec, kPaperHierarchy);
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(spec.to_string(), "32K/4/64");
}

TEST(HierarchySpec, ToStringComposesBothLevels) {
  HierarchySpec spec;
  spec.l2 = CacheGeometry{256 * 1024, 8, 64};
  EXPECT_EQ(spec.to_string(), "32K/4/64+l2=256K/8/64");
  spec.l1 = CacheGeometry{2048, 2, 32};
  spec.l2 = CacheGeometry{1024 * 1024, 16, 32};
  EXPECT_EQ(spec.to_string(), "2K/2/32+l2=1M/16/32");
}

TEST(HierarchySpec, ParseGeometryReadsCanonicalText) {
  EXPECT_EQ(parse_geometry("32K/4/64"), kL1I);
  EXPECT_EQ(parse_geometry("2048/2/32"), (CacheGeometry{2048, 2, 32}));
  EXPECT_EQ(parse_geometry("1M/16/64"), (CacheGeometry{1024 * 1024, 16, 64}));
  EXPECT_THROW((void)parse_geometry(""), ContractError);
  EXPECT_THROW((void)parse_geometry("32K/4"), ContractError);
  EXPECT_THROW((void)parse_geometry("32K/4/64/2"), ContractError);
  EXPECT_THROW((void)parse_geometry("32Q/4/64"), ContractError);
  EXPECT_THROW((void)parse_geometry("1000/4/64"), ContractError);  // invalid
}

TEST(HierarchySpec, ParseHierarchyRoundTripsToString) {
  for (const char* text :
       {"32K/4/64", "16K/2/64+l2=256K/8/64", "2K/2/32+l2=1M/16/32"}) {
    const HierarchySpec spec = parse_hierarchy(text);
    EXPECT_EQ(spec.to_string(), text);
    EXPECT_NO_THROW(spec.validate());
  }
  EXPECT_THROW((void)parse_hierarchy(""), ContractError);
  EXPECT_THROW((void)parse_hierarchy("32K/4/64+l3=1M/8/64"), ContractError);
  // Line-size mismatch between levels is a validation error, even via text.
  EXPECT_THROW((void)parse_hierarchy("32K/4/64+l2=256K/8/32"), ContractError);
}

TEST(HierarchySpec, ValidateRejectsBadShapes) {
  // L2 line size must match the L1 (line ids are L1-line granular).
  HierarchySpec mismatched;
  mismatched.l2 = CacheGeometry{256 * 1024, 8, 32};
  EXPECT_THROW(mismatched.validate(), ContractError);

  // L2 must be at least as large as the L1.
  HierarchySpec tiny_l2;
  tiny_l2.l2 = CacheGeometry{8 * 1024, 4, 64};
  EXPECT_THROW(tiny_l2.validate(), ContractError);

  // The latency ladder must be monotone and finite.
  HierarchySpec inverted;
  inverted.l2 = CacheGeometry{256 * 1024, 8, 64};
  inverted.l2_hit_cycles = 0.5;  // faster than the L1
  EXPECT_THROW(inverted.validate(), ContractError);
  HierarchySpec infinite;
  infinite.memory_cycles = std::numeric_limits<double>::infinity();
  EXPECT_THROW(infinite.validate(), ContractError);
}

TEST(HierarchySpec, EncodeDecodeRoundTrips) {
  std::vector<HierarchySpec> specs;
  specs.emplace_back();  // the paper default
  HierarchySpec l2;
  l2.l2 = CacheGeometry{256 * 1024, 8, 64};
  specs.push_back(l2);
  HierarchySpec custom;
  custom.l1 = CacheGeometry{16 * 1024, 2, 32};
  custom.l2 = CacheGeometry{2 * 1024 * 1024, 16, 32};
  custom.l1_hit_cycles = 2.0;
  custom.l2_hit_cycles = 11.0;
  custom.memory_cycles = 80.0;
  specs.push_back(custom);

  for (const HierarchySpec& spec : specs) {
    const std::string bytes = spec.encode();
    EXPECT_EQ(HierarchySpec::decode(bytes), spec) << spec.to_string();
  }

  // Truncation and trailing garbage are decode errors, never silent.
  const std::string bytes = custom.encode();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW((void)HierarchySpec::decode(bytes.substr(0, len)),
                 ContractError)
        << "truncated to " << len;
  }
  EXPECT_THROW((void)HierarchySpec::decode(bytes + "x"), ContractError);
}

TEST(HierarchySpec, HashSeparatesDistinctSpecs) {
  HierarchySpec a;
  HierarchySpec b;
  b.l2 = CacheGeometry{256 * 1024, 8, 64};
  HierarchySpec c = b;
  c.l2_hit_cycles = 9.0;
  EXPECT_EQ(a.hash(), HierarchySpec{}.hash());
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_NE(b.hash(), c.hash());  // latencies are part of the identity
}

// ---- CacheLevel: chaining, counters, AMAT -----------------------------------

TEST(CacheLevel, AccessReportsHitDepthAndChainsMisses) {
  // L1: one 2-way set; L2: one 8-way set. Same 64B lines.
  CacheLevel l2(CacheGeometry{512, 8, 64}, 7.0);
  CacheLevel l1(CacheGeometry{128, 2, 64}, 1.0, &l2);

  EXPECT_EQ(l1.access(0), 2u);  // cold: missed both levels
  EXPECT_EQ(l1.access(0), 0u);  // hit in L1
  EXPECT_EQ(l1.access(1), 2u);
  EXPECT_EQ(l1.access(2), 2u);  // evicts 0 from the 2-way L1, not from L2
  EXPECT_EQ(l1.access(0), 1u);  // L1 miss, L2 hit
  EXPECT_EQ(l1.contains(0), true);
  EXPECT_EQ(l2.contains(1), true);  // still resident below

  // Per-level counters: L2 sees only the L1's misses.
  EXPECT_EQ(l1.accesses(), 5u);
  EXPECT_EQ(l1.misses(), 4u);
  EXPECT_EQ(l1.hits(), 1u);
  EXPECT_EQ(l2.accesses(), 4u);
  EXPECT_EQ(l2.misses(), 3u);
  EXPECT_EQ(l2.hits(), 1u);
}

TEST(CacheLevel, PrefillOnResidentLineIsALocalRecencyTouch) {
  CacheLevel l2(CacheGeometry{512, 8, 64}, 7.0);
  CacheLevel l1(CacheGeometry{128, 2, 64}, 1.0, &l2);
  l1.access(0);
  l1.access(1);
  const std::uint64_t l2_accesses = l2.accesses();
  EXPECT_TRUE(l1.prefill(0));  // resident: recency only, nothing downstream
  EXPECT_EQ(l2.accesses(), l2_accesses);
  l1.access(2);                 // evicts 1 (prefill made 0 the MRU)
  EXPECT_TRUE(l1.contains(0));
  EXPECT_FALSE(l1.contains(1));

  // A missing line installs here and below, without counting anywhere.
  const std::uint64_t l1_accesses = l1.accesses();
  EXPECT_FALSE(l2.contains(9));
  EXPECT_FALSE(l1.prefill(9));
  EXPECT_TRUE(l1.contains(9));
  EXPECT_TRUE(l2.contains(9));
  EXPECT_EQ(l1.accesses(), l1_accesses);
}

TEST(CacheLevel, AmatComposesAcrossTheChain) {
  CacheLevel l2(CacheGeometry{512, 8, 64}, 7.0);
  CacheLevel l1(CacheGeometry{128, 2, 64}, 1.0, &l2);
  // Drive a stream with known ratios: 4 accesses, 2 L1 misses, 1 L2 miss.
  l1.access(0);  // cold (L1 miss, L2 miss)
  l1.access(0);  // L1 hit
  l1.access(2);  // evicts nothing in L2; L1 install evicts nothing yet
  l1.access(0);  // L1 hit
  ASSERT_EQ(l1.accesses(), 4u);
  ASSERT_EQ(l1.misses(), 2u);
  ASSERT_EQ(l2.misses(), 2u);  // both L1 misses were cold in L2 too
  // amat = 1 + mr1 * (7 + mr2 * 35) = 1 + 0.5 * (7 + 1.0 * 35) = 22.
  EXPECT_DOUBLE_EQ(l1.amat(35.0), 22.0);
  // A single level closes the recursion directly on memory_cycles.
  CacheLevel flat(CacheGeometry{128, 2, 64}, 1.0);
  flat.access(0);
  flat.access(0);
  EXPECT_DOUBLE_EQ(flat.amat(35.0), 1.0 + 0.5 * 35.0);
}

TEST(CacheLevel, DegenerateGeometriesStayExact) {
  // 1 set x 1 way: every distinct line evicts the previous one.
  CacheGeometry one_line{64, 1, 64};
  ASSERT_NO_THROW(one_line.validate());
  CacheLevel tiny(one_line);
  EXPECT_EQ(tiny.access(0), 1u);
  EXPECT_EQ(tiny.access(0), 0u);
  EXPECT_EQ(tiny.access(1), 1u);
  EXPECT_EQ(tiny.access(0), 1u);
  EXPECT_EQ(tiny.evictions(), 2u);

  // Direct-mapped (1-way, many sets): conflicts are per-set.
  CacheLevel direct(CacheGeometry{256, 1, 64});  // 4 sets
  EXPECT_EQ(direct.access(0), 1u);
  EXPECT_EQ(direct.access(1), 1u);
  EXPECT_EQ(direct.access(0), 0u);  // different sets do not conflict
  EXPECT_EQ(direct.access(4), 1u);  // same set as 0: evicts it
  EXPECT_EQ(direct.access(0), 1u);
}

// ---- CacheHierarchy: front sharing ------------------------------------------

TEST(CacheHierarchy, FlatSpecSharesOneFrontAcrossParties) {
  CacheHierarchy hier(HierarchySpec{}, /*parties=*/3);
  EXPECT_EQ(hier.front_count(), 1u);
  EXPECT_EQ(hier.shared_level(), nullptr);
  EXPECT_EQ(&hier.front(0), &hier.front(2));  // the paper's shared L1I
  hier.front(0).access(7);
  EXPECT_TRUE(hier.front(2).contains(7));
}

TEST(CacheHierarchy, MultiLevelSpecGivesPrivateFrontsOverASharedL2) {
  HierarchySpec spec;
  spec.l2 = CacheGeometry{256 * 1024, 8, 64};
  CacheHierarchy hier(spec, /*parties=*/3);
  EXPECT_EQ(hier.front_count(), 3u);
  ASSERT_NE(hier.shared_level(), nullptr);
  EXPECT_NE(&hier.front(0), &hier.front(1));
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(hier.front(p).next(), hier.shared_level());
  }
  // A fill by one party lands in the shared L2 but not in a peer's L1.
  hier.front(0).access(7);
  EXPECT_TRUE(hier.shared_level()->contains(7));
  EXPECT_FALSE(hier.front(1).contains(7));
  EXPECT_EQ(hier.front(1).access(7), 1u);  // peer pulls it from the L2
}

// ---- Simulator integration ---------------------------------------------------

/// A module with one function that loops over `n_blocks` blocks of
/// `block_bytes` each.
Module loop_module(std::uint32_t n_blocks, std::uint32_t block_bytes) {
  ModuleBuilder mb("loop");
  auto f = mb.function("main");
  std::vector<BlockId> blocks;
  for (std::uint32_t i = 0; i < n_blocks; ++i) {
    blocks.push_back(f.block(block_bytes));
  }
  for (std::uint32_t i = 0; i + 1 < n_blocks; ++i) {
    f.jump(blocks[i], blocks[i + 1]);
  }
  const BlockId exit = f.block(16);
  f.loop(blocks.back(), blocks.front(), exit, 0.999);
  return std::move(mb).build();
}

TEST(HierarchySim, SoloL2AttributionInvariants) {
  // A 16KB loop through a 4KB L1: every lap spills, the 256KB L2 holds it.
  const Module m = loop_module(256, 64);
  const ProfileResult r = profile(m, 1, {.max_events = 30'000});
  SimOptions options;
  options.hierarchy.l1 = CacheGeometry{4 * 1024, 2, 64};
  options.hierarchy.l2 = CacheGeometry{256 * 1024, 8, 64};
  const SimResult sim = simulate_solo(m, original_layout(m), r.block_trace,
                                      options);
  // Demand-side attribution: every demand L1 miss probes the L2, no more.
  EXPECT_EQ(sim.l2_probes, sim.demand_misses);
  EXPECT_GT(sim.l2_probes, 0u);
  // The loop fits in the L2, so only its cold misses reach memory.
  EXPECT_LT(sim.l2_misses, sim.l2_probes / 10);

  // Per-level breakdown mirrors the counters.
  const std::vector<LevelStats> levels =
      level_breakdown(sim, options.hierarchy);
  ASSERT_EQ(levels.size(), 2u);
  EXPECT_EQ(levels[0].accesses, sim.line_probes);
  EXPECT_EQ(levels[0].misses, sim.demand_misses);
  EXPECT_EQ(levels[1].accesses, sim.l2_probes);
  EXPECT_EQ(levels[1].misses, sim.l2_misses);

  // AMAT: multi-level sits between "everything hits L2" and the flat bound.
  const double multi = amat(sim, options.hierarchy);
  SimOptions flat;
  flat.hierarchy.l1 = options.hierarchy.l1;
  const SimResult flat_sim = simulate_solo(m, original_layout(m),
                                           r.block_trace, flat);
  const double flat_amat = amat(flat_sim, flat.hierarchy);
  EXPECT_LT(multi, flat_amat);  // the L2 absorbed capacity misses
  EXPECT_GT(multi, options.hierarchy.l1_hit_cycles);
}

TEST(HierarchySim, MirroredL2MissesEveryProbe) {
  // An L2 with the exact L1 geometry holds exactly the L1's contents (every
  // access installs in both), so every L1 miss must also miss in the L2.
  const Module m = loop_module(256, 64);
  const ProfileResult r = profile(m, 1, {.max_events = 20'000});
  SimOptions options;
  options.hierarchy.l1 = CacheGeometry{4 * 1024, 2, 64};
  options.hierarchy.l2 = CacheGeometry{4 * 1024, 2, 64};
  const SimResult sim = simulate_solo(m, original_layout(m), r.block_trace,
                                      options);
  EXPECT_GT(sim.l2_probes, 0u);
  EXPECT_EQ(sim.l2_misses, sim.l2_probes);
}

TEST(HierarchySim, FlatSpecReportsNoL2Traffic) {
  const Module m = loop_module(64, 64);
  const ProfileResult r = profile(m, 1, {.max_events = 10'000});
  const SimResult sim = simulate_solo(m, original_layout(m), r.block_trace);
  EXPECT_EQ(sim.l2_probes, 0u);
  EXPECT_EQ(sim.l2_misses, 0u);
  const std::vector<LevelStats> levels = level_breakdown(sim, HierarchySpec{});
  ASSERT_EQ(levels.size(), 1u);
  EXPECT_EQ(levels[0].misses, sim.demand_misses);
  EXPECT_DOUBLE_EQ(
      amat(sim, HierarchySpec{}),
      1.0 + levels[0].miss_ratio() * HierarchySpec{}.memory_cycles);
}

TEST(HierarchySim, RoomySharedL2MakesCorunMatchSolo) {
  // Private L1 fronts mean co-run interference can only travel through the
  // shared L2. With an L2 big enough for both parties there is no capacity
  // pressure, so each party's hit/miss stream must equal its solo run.
  const Module self = loop_module(128, 64);  // 8KB
  const Module peer = loop_module(96, 64);   // 6KB
  const ProfileResult rs = profile(self, 1, {.max_events = 20'000});
  const ProfileResult rp = profile(peer, 2, {.max_events = 20'000});
  SimOptions options;
  options.hierarchy.l1 = CacheGeometry{4 * 1024, 2, 64};
  options.hierarchy.l2 = CacheGeometry{1024 * 1024, 16, 64};

  const CodeLayout ls = original_layout(self);
  const CodeLayout lp = original_layout(peer);
  const SimResult solo = simulate_solo(self, ls, rs.block_trace, options);
  const CorunResult corun = simulate_corun(self, ls, rs.block_trace, peer, lp,
                                           rp.block_trace, options);
  EXPECT_EQ(corun.self.demand_misses, solo.demand_misses);
  EXPECT_EQ(corun.self.l2_probes, solo.l2_probes);
  EXPECT_EQ(corun.self.l2_misses, solo.l2_misses);

  // Shrinking the shared L2 brings the interference back.
  SimOptions tight = options;
  tight.hierarchy.l2 = CacheGeometry{8 * 1024, 4, 64};
  const CorunResult contended = simulate_corun(
      self, ls, rs.block_trace, peer, lp, rp.block_trace, tight);
  EXPECT_GT(contended.self.l2_misses, corun.self.l2_misses);
}

}  // namespace
}  // namespace codelayout
