#include <unordered_set>

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "locality/reuse.hpp"
#include "support/rng.hpp"

namespace codelayout {
namespace {

using testing::make_trace;

/// Reference O(N^2) reuse distances: distinct symbols strictly between
/// consecutive accesses of the same symbol.
std::vector<std::uint64_t> naive_reuse(const Trace& t) {
  const auto symbols = t.symbols();
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    std::size_t prev = symbols.size();
    for (std::size_t j = i; j-- > 0;) {
      if (symbols[j] == symbols[i]) {
        prev = j;
        break;
      }
    }
    if (prev == symbols.size()) {
      out.push_back(kColdReuse);
      continue;
    }
    std::unordered_set<Symbol> distinct;
    for (std::size_t j = prev + 1; j < i; ++j) distinct.insert(symbols[j]);
    out.push_back(distinct.size());
  }
  return out;
}

TEST(Reuse, HandComputedExample) {
  // Trace: a b c a a b
  const Trace t = make_trace({0, 1, 2, 0, 0, 1});
  const auto d = per_access_reuse_distances(t);
  ASSERT_EQ(d.size(), 6u);
  EXPECT_EQ(d[0], kColdReuse);
  EXPECT_EQ(d[1], kColdReuse);
  EXPECT_EQ(d[2], kColdReuse);
  EXPECT_EQ(d[3], 2u);  // b, c between
  EXPECT_EQ(d[4], 0u);  // immediate reuse
  EXPECT_EQ(d[5], 2u);  // c? no: between b@1 and b@5: c,a distinct = 2
}

TEST(Reuse, HistogramMatchesPerAccess) {
  Rng rng(5);
  Trace t(Trace::Granularity::kBlock);
  for (int i = 0; i < 3000; ++i) {
    t.push_symbol(static_cast<Symbol>(rng.zipf(40, 0.8)));
  }
  const ReuseProfile p = compute_reuse(t);
  const auto d = per_access_reuse_distances(t);
  std::vector<std::uint64_t> hist;
  std::uint64_t cold = 0;
  for (std::uint64_t x : d) {
    if (x == kColdReuse) {
      ++cold;
      continue;
    }
    if (hist.size() <= x) hist.resize(x + 1, 0);
    ++hist[x];
  }
  EXPECT_EQ(p.cold_accesses, cold);
  EXPECT_EQ(p.distance_histogram, hist);
  EXPECT_EQ(p.total_accesses, t.size());
}

class ReusePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReusePropertyTest, FenwickMatchesNaive) {
  Rng rng(GetParam());
  Trace t(Trace::Granularity::kBlock);
  const auto len = 50 + rng.below(300);
  for (std::uint64_t i = 0; i < len; ++i) {
    t.push_symbol(static_cast<Symbol>(rng.below(20)));
  }
  EXPECT_EQ(per_access_reuse_distances(t), naive_reuse(t));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReusePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Reuse, ReuseTimeHistogram) {
  // Trace: x y x -> reuse time 2 for the second x.
  const Trace t = make_trace({3, 4, 3});
  const ReuseProfile p = compute_reuse(t);
  ASSERT_GT(p.time_histogram.size(), 2u);
  EXPECT_EQ(p.time_histogram[2], 1u);
}

TEST(Reuse, MissRatioAtCapacity) {
  // Cyclic trace over 4 symbols: with capacity 4 all reuses hit; with
  // capacity 3, LRU misses every access (classic cyclic thrash).
  Trace t(Trace::Granularity::kBlock);
  for (int rep = 0; rep < 50; ++rep) {
    for (Symbol s = 0; s < 4; ++s) t.push_symbol(s);
  }
  const ReuseProfile p = compute_reuse(t);
  EXPECT_NEAR(p.miss_ratio_at(4), 4.0 / 200, 1e-9);   // only cold misses
  EXPECT_NEAR(p.miss_ratio_at(3), 1.0, 1e-9);         // everything misses
}

TEST(Reuse, MeanDistance) {
  // a b a b: two reuses each at distance 1.
  const Trace t = make_trace({0, 1, 0, 1});
  EXPECT_DOUBLE_EQ(compute_reuse(t).mean_distance(), 1.0);
}

TEST(Reuse, EmptyTrace) {
  const Trace t(Trace::Granularity::kBlock);
  const ReuseProfile p = compute_reuse(t);
  EXPECT_EQ(p.total_accesses, 0u);
  EXPECT_EQ(p.miss_ratio_at(10), 0.0);
}

}  // namespace
}  // namespace codelayout
