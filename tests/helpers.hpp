// Shared test utilities.
#pragma once

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "cache/icache_sim.hpp"
#include "locality/footprint.hpp"
#include "locality/reuse.hpp"
#include "trace/trace.hpp"
#include "trg/graph.hpp"

namespace codelayout::testing {

/// Builds a block-granularity trace from raw symbols.
inline Trace make_trace(std::initializer_list<Symbol> symbols) {
  Trace t(Trace::Granularity::kBlock);
  for (Symbol s : symbols) t.push_symbol(s);
  return t;
}

inline Trace make_trace(const std::vector<Symbol>& symbols) {
  Trace t(Trace::Granularity::kBlock);
  for (Symbol s : symbols) t.push_symbol(s);
  return t;
}

/// The paper's Figure 1 example trace: B1 B4 B2 B4 B2 B3 B5 B1 B4, with
/// B1..B5 encoded as symbols 1..5.
inline Trace fig1_trace() { return make_trace({1, 4, 2, 4, 2, 3, 5, 1, 4}); }

/// Rebuilds `t` by replaying its flat event sequence one push_symbol at a
/// time — the reference construction path the run-equivalence suite compares
/// run-built traces and kernels against.
inline Trace flat_replay(const Trace& t) {
  Trace out(t.granularity());
  for (Symbol s : t.symbols()) out.push_symbol(s);
  return out;
}

// ---- Deterministic checksums over analysis-kernel outputs -------------------
//
// FNV-1a over the little-endian bytes of each 64-bit word. Used by the golden
// equivalence suite (trace_runs_test) to pin every kernel's output: the
// checksums in golden_suite.inc were captured from the flat-vector Trace
// implementation before the run-length refactor, so a matching hash proves the
// run-aware fast paths reproduce the original results bit for bit.

inline constexpr std::uint64_t kFnvSeed = 14695981039346656037ull;

inline std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

inline std::uint64_t hash_symbols(const Trace& t) {
  std::uint64_t h = fnv1a(kFnvSeed, t.size());
  h = fnv1a(h, t.is_block() ? 0 : 1);
  for (Symbol s : t.symbols()) h = fnv1a(h, s);
  return h;
}

inline std::uint64_t hash_sequence(std::span<const Symbol> seq) {
  std::uint64_t h = fnv1a(kFnvSeed, seq.size());
  for (Symbol s : seq) h = fnv1a(h, s);
  return h;
}

inline std::uint64_t hash_reuse(const ReuseProfile& p) {
  std::uint64_t h = fnv1a(kFnvSeed, p.cold_accesses);
  h = fnv1a(h, p.total_accesses);
  h = fnv1a(h, p.distance_histogram.size());
  for (std::uint64_t v : p.distance_histogram) h = fnv1a(h, v);
  h = fnv1a(h, p.time_histogram.size());
  for (std::uint64_t v : p.time_histogram) h = fnv1a(h, v);
  return h;
}

inline std::uint64_t hash_footprint(const FootprintCurve& c) {
  std::uint64_t h = fnv1a(kFnvSeed, c.trace_length());
  for (double v : c.values()) h = fnv1a(h, std::bit_cast<std::uint64_t>(v));
  return h;
}

inline std::uint64_t hash_trg(const Trg& g) {
  std::uint64_t h = fnv1a(kFnvSeed, g.node_count());
  for (const Trg::Edge& e : g.edges_by_weight()) {
    h = fnv1a(h, e.a);
    h = fnv1a(h, e.b);
    h = fnv1a(h, e.weight);
  }
  return h;
}

inline std::uint64_t hash_sim(const SimResult& r) {
  std::uint64_t h = fnv1a(kFnvSeed, r.instructions);
  h = fnv1a(h, r.overhead_instructions);
  h = fnv1a(h, r.line_probes);
  h = fnv1a(h, r.demand_misses);
  h = fnv1a(h, r.wrong_path_misses);
  h = fnv1a(h, r.blocks);
  return h;
}

}  // namespace codelayout::testing
