// Shared test utilities.
#pragma once

#include <initializer_list>
#include <vector>

#include "trace/trace.hpp"

namespace codelayout::testing {

/// Builds a block-granularity trace from raw symbols.
inline Trace make_trace(std::initializer_list<Symbol> symbols) {
  Trace t(Trace::Granularity::kBlock);
  for (Symbol s : symbols) t.push_symbol(s);
  return t;
}

inline Trace make_trace(const std::vector<Symbol>& symbols) {
  Trace t(Trace::Granularity::kBlock);
  for (Symbol s : symbols) t.push_symbol(s);
  return t;
}

/// The paper's Figure 1 example trace: B1 B4 B2 B4 B2 B3 B5 B1 B4, with
/// B1..B5 encoded as symbols 1..5.
inline Trace fig1_trace() { return make_trace({1, 4, 2, 4, 2, 3, 5, 1, 4}); }

}  // namespace codelayout::testing
