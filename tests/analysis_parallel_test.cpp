// Parallel-vs-serial equivalence for the analysis kernels.
//
// Both parallel decompositions are designed to be *exact* — not "equivalent
// up to ordering" but bit-identical: the affinity w-grid passes are
// independent and fold in the serial order, and the sharded TRG build
// warm-starts each chunk's LRU stack in the provable serial state (the
// capped stack's residents are the maximal <=cap prefix of the recency
// order of the preceding events). These tests pin that claim node-for-node
// and edge-for-edge across thread counts, forced shard counts, chunk
// boundaries landing mid-trace, and chunks smaller than the warm-up window.
// The suite also runs under TSan in CI, which checks the synchronization of
// the fan-out itself.
#include <vector>

#include <gtest/gtest.h>

#include "affinity/analysis.hpp"
#include "harness/pipeline.hpp"
#include "helpers.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "trg/graph.hpp"

namespace codelayout {
namespace {

using testing::make_trace;

/// Zipf-skewed random trace with bursts (runs), the shape the real
/// workloads produce: hot symbols recur, and repeated symbols form runs so
/// run-array chunk boundaries land next to long runs.
Trace random_trace(std::uint64_t seed, std::size_t events, Symbol space,
                   double burstiness = 0.3) {
  Rng rng(seed);
  Trace t(Trace::Granularity::kBlock);
  while (t.size() < events) {
    const Symbol s = static_cast<Symbol>(rng.zipf(space, 0.8));
    const std::uint64_t run = 1 + (rng.chance(burstiness) ? rng.below(6) : 0);
    for (std::uint64_t i = 0; i < run && t.size() < events; ++i) {
      t.push_symbol(s);
    }
  }
  return t;
}

void expect_same_hierarchy(const AffinityHierarchy& a,
                           const AffinityHierarchy& b) {
  ASSERT_EQ(a.nodes().size(), b.nodes().size());
  ASSERT_EQ(std::vector<std::uint32_t>(a.roots().begin(), a.roots().end()),
            std::vector<std::uint32_t>(b.roots().begin(), b.roots().end()));
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    const AffinityGroup& x = a.nodes()[i];
    const AffinityGroup& y = b.nodes()[i];
    EXPECT_EQ(x.id, y.id) << "node " << i;
    EXPECT_EQ(x.formed_at_w, y.formed_at_w) << "node " << i;
    EXPECT_EQ(x.members, y.members) << "node " << i;
    EXPECT_EQ(x.children, y.children) << "node " << i;
    EXPECT_EQ(x.first_occurrence, y.first_occurrence) << "node " << i;
    EXPECT_EQ(x.occurrences, y.occurrences) << "node " << i;
  }
}

void expect_same_trg(const Trg& a, const Trg& b) {
  EXPECT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.edge_count(), b.edge_count());
  ASSERT_EQ(std::vector<Symbol>(a.nodes().begin(), a.nodes().end()),
            std::vector<Symbol>(b.nodes().begin(), b.nodes().end()));
  const auto ea = a.edges_by_weight();
  const auto eb = b.edges_by_weight();
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].a, eb[i].a) << "edge " << i;
    EXPECT_EQ(ea[i].b, eb[i].b) << "edge " << i;
    EXPECT_EQ(ea[i].weight, eb[i].weight) << "edge " << i;
  }
}

// ---------- affinity w-grid fan-out ------------------------------------------

TEST(ParallelAffinity, PoolWidthsProduceIdenticalHierarchy) {
  const Trace trace = random_trace(11, 6'000, 80);
  const AffinityHierarchy serial = analyze_affinity(trace, AffinityConfig{});
  for (unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    AffinityConfig config;
    config.pool = &pool;
    const AffinityHierarchy parallel = analyze_affinity(trace, config);
    SCOPED_TRACE(threads);
    expect_same_hierarchy(serial, parallel);
  }
}

TEST(ParallelAffinity, NonDefaultGridAndTinyTrace) {
  const Trace tiny = make_trace({1, 2, 1, 3, 2, 1, 4, 4, 2});
  ThreadPool pool(4);
  AffinityConfig serial_config;
  serial_config.w_values = {2, 5, 9};
  AffinityConfig parallel_config = serial_config;
  parallel_config.pool = &pool;
  expect_same_hierarchy(analyze_affinity(tiny, serial_config),
                        analyze_affinity(tiny, parallel_config));
}

// ---------- sharded TRG build ------------------------------------------------

TEST(ParallelTrg, ForcedShardCountsMatchSerialEdgeForEdge) {
  const Trace trace = random_trace(23, 8'000, 120);
  const Trg serial = Trg::build(trace, TrgConfig{.window_entries = 64});
  for (std::uint32_t shards : {2u, 3u, 8u, 16u}) {
    // Null pool: the decomposition itself (warm-up + merge) is what is under
    // test; the calling thread computes every shard via the help-first path.
    const Trg sharded = Trg::build(
        trace, TrgConfig{.window_entries = 64, .shards = shards});
    SCOPED_TRACE(shards);
    expect_same_trg(serial, sharded);
  }
}

TEST(ParallelTrg, PoolBuildMatchesSerial) {
  const Trace trace = random_trace(37, 8'000, 100);
  for (const std::uint32_t window : {8u, 64u, 1024u}) {
    const Trg serial = Trg::build(trace, TrgConfig{.window_entries = window});
    for (unsigned threads : {2u, 8u}) {
      ThreadPool pool(threads);
      const Trg parallel = Trg::build(
          trace, TrgConfig{.window_entries = window, .pool = &pool});
      SCOPED_TRACE(window);
      SCOPED_TRACE(threads);
      expect_same_trg(serial, parallel);
    }
  }
}

TEST(ParallelTrg, LongRunsAroundChunkBoundaries) {
  // Runs of up to ~200 events make most chunk boundaries land adjacent to a
  // long run; run-array chunking must keep each run's events in one shard
  // and the warm-up must reproduce the stack state right after it.
  const Trace trace = random_trace(41, 12'000, 40, /*burstiness=*/0.9);
  const Trg serial = Trg::build(trace, TrgConfig{.window_entries = 16});
  for (std::uint32_t shards : {2u, 7u, 16u}) {
    const Trg sharded = Trg::build(
        trace, TrgConfig{.window_entries = 16, .shards = shards});
    SCOPED_TRACE(shards);
    expect_same_trg(serial, sharded);
  }
}

TEST(ParallelTrg, ChunkSmallerThanWarmupWindow) {
  // 40-run chunks against a 1024-entry window: every shard's warm-up scan
  // reaches all the way back to the start of the trace and must still
  // reconstruct the serial stack exactly.
  const Trace trace = random_trace(53, 400, 30);
  const Trg serial = Trg::build(trace, TrgConfig{.window_entries = 1024});
  for (std::uint32_t shards : {2u, 10u}) {
    const Trg sharded = Trg::build(
        trace, TrgConfig{.window_entries = 1024, .shards = shards});
    SCOPED_TRACE(shards);
    expect_same_trg(serial, sharded);
  }
}

TEST(ParallelTrg, MoreShardsThanRunsDegradesGracefully) {
  const Trace tiny = make_trace({1, 2, 1, 3});
  const Trg serial = Trg::build(tiny, TrgConfig{});
  const Trg sharded = Trg::build(tiny, TrgConfig{.shards = 64});
  expect_same_trg(serial, sharded);
}

// ---------- pipeline plumbing ------------------------------------------------

TEST(ParallelPipeline, ModelSequencesIdenticalWithAnalysisPool) {
  const WorkloadSpec spec = find_spec("429.mcf");
  PipelineConfig serial_config;
  const PreparedWorkload prepared = prepare_workload(spec, serial_config);

  ThreadPool pool(4);
  PipelineConfig parallel_config;
  parallel_config.analysis_pool = &pool;
  for (const Optimizer optimizer : kAllOptimizers) {
    SCOPED_TRACE(optimizer.name());
    EXPECT_EQ(model_sequence(prepared, optimizer, serial_config),
              model_sequence(prepared, optimizer, parallel_config));
  }
}

}  // namespace
}  // namespace codelayout
