#include <cctype>
#include <set>

#include <gtest/gtest.h>

#include "exec/interpreter.hpp"
#include "workloads/spec.hpp"

namespace codelayout {
namespace {

TEST(Suite, Has29UniquelyNamedPrograms) {
  const auto& suite = spec_suite();
  EXPECT_EQ(suite.size(), 29u);
  std::set<std::string> names;
  for (const auto& s : suite) names.insert(s.name);
  EXPECT_EQ(names.size(), 29u);
}

TEST(Suite, SelectedBenchmarksAreInTheSuite) {
  const auto& selected = selected_benchmarks();
  EXPECT_EQ(selected.size(), 8u);
  for (const auto& name : selected) {
    EXPECT_NO_THROW(find_spec(name));
  }
}

TEST(Suite, ProbesExist) {
  EXPECT_NO_THROW(find_spec(kProbe1));
  EXPECT_NO_THROW(find_spec(kProbe2));
}

TEST(Suite, FindSpecThrowsOnUnknown) {
  EXPECT_THROW(find_spec("999.nonexistent"), ContractError);
}

TEST(Suite, SeedsAreUnique) {
  std::set<std::uint64_t> seeds;
  for (const auto& s : spec_suite()) seeds.insert(s.seed);
  EXPECT_EQ(seeds.size(), spec_suite().size());
}

TEST(Generator, ModulesValidate) {
  for (const auto& name : selected_benchmarks()) {
    const Module m = build_workload(find_spec(name));
    EXPECT_NO_THROW(m.validate()) << name;
    EXPECT_EQ(m.name(), name);
  }
}

TEST(Generator, DeterministicForSpec) {
  const WorkloadSpec& spec = find_spec("458.sjeng");
  const Module a = build_workload(spec);
  const Module b = build_workload(spec);
  EXPECT_EQ(a.block_count(), b.block_count());
  EXPECT_EQ(a.static_bytes(), b.static_bytes());
  for (std::size_t i = 0; i < a.block_count(); ++i) {
    const BlockId id(static_cast<std::uint32_t>(i));
    EXPECT_EQ(a.block(id).size_bytes, b.block(id).size_bytes);
    EXPECT_EQ(a.block(id).label, b.block(id).label);
  }
}

TEST(Generator, DifferentSeedsDifferentPrograms) {
  WorkloadSpec spec = find_spec("458.sjeng");
  const Module a = build_workload(spec);
  spec.seed ^= 0xdeadbeef;
  const Module b = build_workload(spec);
  // Same shape parameters but different random sizes.
  bool any_difference = a.block_count() != b.block_count();
  for (std::size_t i = 0; !any_difference && i < a.block_count(); ++i) {
    const BlockId id(static_cast<std::uint32_t>(i));
    any_difference = a.block(id).size_bytes != b.block(id).size_bytes;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Generator, StaticSizeOrderingMatchesTableI) {
  // xalancbmk carries by far the largest static code; mcf the smallest.
  const std::uint64_t xalanc =
      build_workload(find_spec("483.xalancbmk")).static_bytes();
  const std::uint64_t mcf = build_workload(find_spec("429.mcf")).static_bytes();
  const std::uint64_t gcc = build_workload(find_spec("403.gcc")).static_bytes();
  EXPECT_GT(xalanc, gcc);
  EXPECT_GT(gcc, mcf);
  EXPECT_LT(mcf, 64 * 1024u);
}

TEST(Generator, EntryIsMain) {
  const Module m = build_workload(find_spec("429.mcf"));
  EXPECT_EQ(m.function(m.entry_function()).name, "main");
}

TEST(Generator, RunsToTheEventBudget) {
  const WorkloadSpec& spec = find_spec("429.mcf");
  const ProfileResult r = profile(build_workload(spec), 1,
                                  {.max_events = spec.profile_events});
  EXPECT_EQ(r.block_trace.size(), spec.profile_events);
  EXPECT_TRUE(r.truncated);
}

TEST(Generator, ColdFunctionsStayCold) {
  // Cold functions must be (nearly) absent from the dynamic trace.
  const WorkloadSpec& spec = find_spec("458.sjeng");
  const Module m = build_workload(spec);
  const ProfileResult r = profile(m, 1, {.max_events = 100'000});
  std::uint64_t cold_events = 0;
  for (std::size_t i = 0; i < r.block_trace.size(); ++i) {
    const auto& fn = m.function(m.block(r.block_trace.block_at(i)).parent);
    if (fn.name.starts_with("cold")) ++cold_events;
  }
  EXPECT_LT(static_cast<double>(cold_events) /
                static_cast<double>(r.block_trace.size()),
            0.01);
}

TEST(Generator, DenseStyleKeepsHotFunctionsContiguous) {
  // gamess (interleave_cold_funcs = false): the hot p*_f* functions occupy a
  // contiguous index range, with all remaining cold code after them.
  const Module m = build_workload(find_spec(kProbe2));
  std::size_t first_hot = m.function_count(), last_hot = 0;
  for (const Function& f : m.functions()) {
    if (f.name.size() > 1 && f.name[0] == 'p' &&
        std::isdigit(static_cast<unsigned char>(f.name[1]))) {
      first_hot = std::min<std::size_t>(first_hot, f.id.index());
      last_hot = std::max<std::size_t>(last_hot, f.id.index());
    }
  }
  ASSERT_LT(first_hot, last_hot);
  for (std::size_t i = first_hot; i <= last_hot; ++i) {
    const auto& name = m.function(FuncId(static_cast<std::uint32_t>(i))).name;
    EXPECT_FALSE(name.starts_with("cold")) << name << " inside hot range";
  }
}

TEST(Generator, InterleavedStyleScattersHotFunctions) {
  // gcc (default): cold functions are sprinkled between hot ones.
  const Module m = build_workload(find_spec(kProbe1));
  std::size_t first_hot = m.function_count(), last_hot = 0;
  std::size_t cold_inside = 0;
  for (const Function& f : m.functions()) {
    if (f.name.size() > 1 && f.name[0] == 'p' &&
        std::isdigit(static_cast<unsigned char>(f.name[1]))) {
      first_hot = std::min<std::size_t>(first_hot, f.id.index());
      last_hot = std::max<std::size_t>(last_hot, f.id.index());
    }
  }
  for (std::size_t i = first_hot; i <= last_hot; ++i) {
    const auto& name = m.function(FuncId(static_cast<std::uint32_t>(i))).name;
    if (name.starts_with("cold")) ++cold_inside;
  }
  EXPECT_GT(cold_inside, 10u);
}

TEST(Generator, PhaseStructureShowsUpInTrace) {
  // Functions of different phases dominate different trace regions.
  const WorkloadSpec& spec = find_spec("453.povray");
  const Module m = build_workload(spec);
  const ProfileResult r = profile(m, 1, {.max_events = 200'000});
  // Count events per phase in the first and second halves of the trace.
  std::vector<std::uint64_t> first_half(spec.phases, 0),
      second_half(spec.phases, 0);
  for (std::size_t i = 0; i < r.block_trace.size(); ++i) {
    const auto& fn = m.function(m.block(r.block_trace.block_at(i)).parent);
    if (fn.name.size() > 1 && fn.name[0] == 'p' && std::isdigit(fn.name[1])) {
      const auto phase = static_cast<std::size_t>(fn.name[1] - '0');
      if (phase < spec.phases) {
        (i < r.block_trace.size() / 2 ? first_half : second_half)[phase]++;
      }
    }
  }
  // The distribution over phases must differ between halves (phased, not
  // uniformly mixed).
  double shift = 0;
  for (std::uint32_t p = 0; p < spec.phases; ++p) {
    const double a = static_cast<double>(first_half[p]);
    const double b = static_cast<double>(second_half[p]);
    shift += std::abs(a - b) / (a + b + 1);
  }
  EXPECT_GT(shift, 0.2);
}

}  // namespace

}  // namespace codelayout
