#include <gtest/gtest.h>

#include "exec/interpreter.hpp"
#include "ir/builder.hpp"

namespace codelayout {
namespace {

/// main -> loop{ call f } with a 2-block callee.
Module call_loop_module(double back_prob) {
  ModuleBuilder mb("call_loop");
  auto callee = mb.function("f");
  const BlockId fe = callee.block(16);
  const BlockId fr = callee.block(16);
  callee.jump(fe, fr);

  auto main_fn = mb.function("main");
  const BlockId entry = main_fn.block(16);
  const BlockId body = main_fn.block(32);
  const BlockId exit = main_fn.block(16);
  main_fn.jump(entry, body);
  main_fn.call(body, callee.id());
  main_fn.loop(body, body, exit, back_prob);
  auto module = std::move(mb).build();
  module.set_entry_function(main_fn.id());
  return module;
}

TEST(Interpreter, DeterministicForSeed) {
  const Module m = call_loop_module(0.9);
  const ProfileResult a = profile(m, 42, {.max_events = 10'000});
  const ProfileResult b = profile(m, 42, {.max_events = 10'000});
  EXPECT_EQ(a.block_trace, b.block_trace);
  EXPECT_EQ(a.dynamic_instructions, b.dynamic_instructions);
}

TEST(Interpreter, DifferentSeedsDiverge) {
  const Module m = call_loop_module(0.5);
  const ProfileResult a = profile(m, 1, {.max_events = 2'000});
  const ProfileResult b = profile(m, 2, {.max_events = 2'000});
  EXPECT_NE(a.block_trace, b.block_trace);
}

TEST(Interpreter, StraightLineRunsOnce) {
  ModuleBuilder mb("straight");
  auto f = mb.function("main");
  const auto blocks = f.chain(3, 16);
  const Module m = std::move(mb).build();
  const ProfileResult r = profile(m, 7);
  ASSERT_EQ(r.block_trace.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(r.block_trace.block_at(i), blocks[i]);
  }
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(r.dynamic_instructions, 3 * 4u);
}

TEST(Interpreter, CallsEnterCallee) {
  const Module m = call_loop_module(0.5);
  const ProfileResult r = profile(m, 3, {.max_events = 1'000});
  EXPECT_GT(r.calls_executed, 0u);
  // Callee blocks must appear in the trace.
  const FuncId f = *m.find_function("f");
  bool saw_callee = false;
  for (std::size_t i = 0; i < r.block_trace.size(); ++i) {
    saw_callee |= m.block(r.block_trace.block_at(i)).parent == f;
  }
  EXPECT_TRUE(saw_callee);
}

TEST(Interpreter, MaxEventsTruncates) {
  const Module m = call_loop_module(0.999);
  const ProfileResult r = profile(m, 5, {.max_events = 100});
  EXPECT_EQ(r.block_trace.size(), 100u);
  EXPECT_TRUE(r.truncated);
}

TEST(Interpreter, LoopIterationsMatchBackEdgeProbability) {
  // Mean iterations of a self-loop with back probability p is 1/(1-p).
  const double p = 0.8;
  const Module m = call_loop_module(p);
  const ProfileResult r = profile(m, 11, {.max_events = 200'000});
  const FuncId main_fn = *m.find_function("main");
  const BlockId body = m.function(main_fn).blocks[1];
  std::uint64_t body_visits = 0, entries = 0;
  for (std::size_t i = 0; i < r.block_trace.size(); ++i) {
    const BlockId b = r.block_trace.block_at(i);
    if (b == body) ++body_visits;
    if (b == m.function(main_fn).entry) ++entries;
  }
  // One run: entries == 1 and body_visits ~ 1/(1-p) = 5 per program run,
  // but the program runs once, so instead verify through the callee call
  // count across a long forced rerun... a single run has geometric length;
  // assert it is plausible (>=1) and the trace ends with the exit block.
  EXPECT_EQ(entries, 1u);
  EXPECT_GE(body_visits, 1u);
  EXPECT_FALSE(r.truncated);
}

TEST(Interpreter, CallDepthElision) {
  // Infinitely recursive function; the depth cap must stop it.
  Module m("recursive");
  const FuncId f = m.add_function("main");
  const BlockId b = m.add_block(f, 16);
  m.add_call(b, f, 1.0);
  m.validate();
  const ProfileResult r =
      profile(m, 1, {.max_events = 1'000, .max_call_depth = 8});
  EXPECT_GT(r.calls_elided, 0u);
  EXPECT_LE(r.block_trace.size(), 9u);
}

TEST(Interpreter, ConditionalCallProbability) {
  Module m("condcall");
  const FuncId callee = m.add_function("callee");
  m.add_block(callee, 16);
  const FuncId main_fn = m.add_function("main");
  const BlockId body = m.add_block(main_fn, 16);
  const BlockId exit = m.add_block(main_fn, 16);
  m.add_call(body, callee, 0.25);
  m.add_edge(body, body, 0.99995);
  m.add_edge(body, exit, 0.00005, true);
  m.set_entry_function(main_fn);
  m.validate();
  // The loop practically never exits; max_events bounds the run.
  const ProfileResult r = profile(m, 13, {.max_events = 100'000});
  std::uint64_t body_visits = 0, callee_visits = 0;
  for (std::size_t i = 0; i < r.block_trace.size(); ++i) {
    const BlockId b = r.block_trace.block_at(i);
    if (b == body) ++body_visits;
    if (m.block(b).parent == callee) ++callee_visits;
  }
  ASSERT_GT(body_visits, 10'000u);
  EXPECT_NEAR(static_cast<double>(callee_visits) /
                  static_cast<double>(body_visits),
              0.25, 0.02);
}

TEST(Interpreter, BranchProbabilitiesRespected) {
  ModuleBuilder mb("branchy");
  auto f = mb.function("main");
  const BlockId head = f.block(16);
  const BlockId taken = f.block(16);
  const BlockId fall = f.block(16);
  const BlockId join = f.block(16);
  const BlockId exit = f.block(16);
  f.branch(head, taken, fall, 0.3);
  f.jump(taken, join, /*fallthrough=*/false);
  f.jump(fall, join);
  f.loop(join, head, exit, 0.999);
  Module m = std::move(mb).build();
  const ProfileResult r = profile(m, 17, {.max_events = 100'000});
  std::uint64_t taken_count = 0, fall_count = 0;
  for (std::size_t i = 0; i < r.block_trace.size(); ++i) {
    const BlockId b = r.block_trace.block_at(i);
    if (b == taken) ++taken_count;
    if (b == fall) ++fall_count;
  }
  const double frac = static_cast<double>(taken_count) /
                      static_cast<double>(taken_count + fall_count);
  EXPECT_NEAR(frac, 0.3, 0.02);
}

TEST(Interpreter, RequiresValidModule) {
  Module m("bad");
  m.add_function("main");  // no blocks
  EXPECT_THROW(profile(m, 1), ContractError);
}

}  // namespace
}  // namespace codelayout
