#include <gtest/gtest.h>

#include "locality/missmodel.hpp"
#include "support/rng.hpp"
#include "trace/trace.hpp"

namespace codelayout {
namespace {

/// Cyclic loop over `n` symbols repeated `reps` times.
Trace cyclic(Symbol n, int reps) {
  Trace t(Trace::Granularity::kBlock);
  for (int r = 0; r < reps; ++r) {
    for (Symbol s = 0; s < n; ++s) t.push_symbol(s);
  }
  return t;
}

TEST(MissModel, FittingProgramHasZeroMissRatio) {
  const auto fp = FootprintCurve::compute(cyclic(8, 100));
  EXPECT_DOUBLE_EQ(solo_miss_ratio(fp, 16.0), 0.0);
  EXPECT_DOUBLE_EQ(solo_miss_ratio(fp, 8.0), 0.0);
}

TEST(MissModel, ThrashingProgramHasHighMissRatio) {
  // A cyclic loop over 64 symbols in a 16-symbol cache misses heavily; the
  // footprint-derivative model reports the asymptotic miss rate of the
  // window where the cache fills.
  const auto fp = FootprintCurve::compute(cyclic(64, 50));
  const double mr = solo_miss_ratio(fp, 16.0);
  EXPECT_GT(mr, 0.5);
  EXPECT_LE(mr, 1.0 + 1e-9);
}

TEST(MissModel, MissRatioDecreasesWithCapacity) {
  Rng rng(3);
  Trace t(Trace::Granularity::kBlock);
  for (int i = 0; i < 20000; ++i) {
    t.push_symbol(static_cast<Symbol>(rng.zipf(200, 0.7)));
  }
  const auto fp = FootprintCurve::compute(t);
  double prev = 1.0;
  for (double c : {10.0, 40.0, 100.0, 180.0}) {
    const double mr = solo_miss_ratio(fp, c);
    EXPECT_LE(mr, prev + 1e-9) << "capacity " << c;
    prev = mr;
  }
}

TEST(MissModel, CorunNeverBelowSolo) {
  const auto self = FootprintCurve::compute(cyclic(20, 200));
  const auto peer = FootprintCurve::compute(cyclic(30, 150));
  for (double c : {16.0, 32.0, 64.0}) {
    EXPECT_GE(corun_miss_ratio(self, peer, c) + 1e-12,
              solo_miss_ratio(self, c))
        << "capacity " << c;
  }
}

TEST(MissModel, CorunWithEmptyPeerEqualsSolo) {
  const auto self = FootprintCurve::compute(cyclic(20, 200));
  const auto peer = FootprintCurve::compute(Trace(Trace::Granularity::kBlock));
  EXPECT_NEAR(corun_miss_ratio(self, peer, 16.0), solo_miss_ratio(self, 16.0),
              1e-9);
}

TEST(MissModel, BiggerPeerHurtsMore) {
  const auto self = FootprintCurve::compute(cyclic(24, 200));
  const auto small_peer = FootprintCurve::compute(cyclic(8, 200));
  const auto big_peer = FootprintCurve::compute(cyclic(40, 200));
  const double with_small = corun_miss_ratio(self, small_peer, 48.0);
  const double with_big = corun_miss_ratio(self, big_peer, 48.0);
  EXPECT_GE(with_big + 1e-12, with_small);
  EXPECT_GT(with_big, 0.0);
}

TEST(MissModel, FasterPeerHurtsMore) {
  Rng rng(9);
  Trace self_t(Trace::Granularity::kBlock), peer_t(Trace::Granularity::kBlock);
  for (int i = 0; i < 20000; ++i) {
    self_t.push_symbol(static_cast<Symbol>(rng.zipf(64, 0.6)));
    peer_t.push_symbol(static_cast<Symbol>(rng.zipf(64, 0.6)) + 1000);
  }
  const auto self = FootprintCurve::compute(self_t);
  const auto peer = FootprintCurve::compute(peer_t);
  const double slow = corun_miss_ratio(self, peer, 64.0, 0.5);
  const double fast = corun_miss_ratio(self, peer, 64.0, 2.0);
  EXPECT_GE(fast + 1e-12, slow);
}

TEST(MissModel, BothFitTogetherNoMisses) {
  const auto a = FootprintCurve::compute(cyclic(8, 100));
  const auto b = FootprintCurve::compute(cyclic(8, 100));
  EXPECT_DOUBLE_EQ(corun_miss_ratio(a, b, 32.0), 0.0);
}

TEST(MissModel, AssessmentSigns) {
  // Self fits alone but not with the peer: positive defensiveness loss; the
  // peer likewise suffers from self: positive politeness loss.
  const auto self = FootprintCurve::compute(cyclic(20, 300));
  const auto peer = FootprintCurve::compute(cyclic(24, 300));
  const auto assessment = assess_corun(self, peer, 32.0);
  EXPECT_DOUBLE_EQ(assessment.self_solo, 0.0);
  EXPECT_GT(assessment.defensiveness_loss(), 0.0);
  EXPECT_GT(assessment.politeness_loss(), 0.0);
}

TEST(MissModel, SmallerSelfFootprintIsMorePolite) {
  // Politeness (Sec. II-A): shrinking self's footprint reduces the peer's
  // co-run misses. The same peer is assessed against a compact and a bloated
  // version of self.
  const auto compact_self = FootprintCurve::compute(cyclic(8, 300));
  const auto bloated_self = FootprintCurve::compute(cyclic(28, 300));
  const auto peer = FootprintCurve::compute(cyclic(24, 300));
  const auto with_compact = assess_corun(compact_self, peer, 32.0);
  const auto with_bloated = assess_corun(bloated_self, peer, 32.0);
  EXPECT_LT(with_compact.politeness_loss(), with_bloated.politeness_loss());
}

TEST(MissModel, RejectsBadCapacity) {
  const auto fp = FootprintCurve::compute(cyclic(4, 10));
  EXPECT_THROW(solo_miss_ratio(fp, 0.0), ContractError);
  EXPECT_THROW(corun_miss_ratio(fp, fp, -1.0), ContractError);
}

}  // namespace
}  // namespace codelayout
