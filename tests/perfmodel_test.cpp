#include <gtest/gtest.h>

#include "perfmodel/perfmodel.hpp"

namespace codelayout {
namespace {

SimResult sim_with(std::uint64_t instructions, std::uint64_t misses,
                   std::uint64_t overhead = 0) {
  SimResult s;
  s.instructions = instructions;
  s.overhead_instructions = overhead;
  s.demand_misses = misses;
  return s;
}

TEST(PerfModel, SoloCyclesFormula) {
  const PerfParams p{.base_cpi = 1.0,
                     .jump_cpi = 0.25,
                     .l1i_miss_penalty = 10.0,
                     .smt_cpi_inflation = 1.5};
  const double cycles = solo_cycles(sim_with(1000, 20), 0.5, p);
  EXPECT_DOUBLE_EQ(cycles, 1000 * 1.5 + 20 * 10.0);
}

TEST(PerfModel, OverheadInstructionsCostJumpCpi) {
  const PerfParams p{.base_cpi = 1.0,
                     .jump_cpi = 0.25,
                     .l1i_miss_penalty = 10.0,
                     .smt_cpi_inflation = 1.5};
  const double cycles = solo_cycles(sim_with(1000, 0, 100), 0.5, p);
  EXPECT_DOUBLE_EQ(cycles, 900 * 1.5 + 100 * 0.25);
}

TEST(PerfModel, FewerMissesFewerCycles) {
  const double worse = solo_cycles(sim_with(1000, 50), 0.5);
  const double better = solo_cycles(sim_with(1000, 10), 0.5);
  EXPECT_LT(better, worse);
}

TEST(PerfModel, CorunInflatesComputeAndMissPenalty) {
  const PerfParams p{.base_cpi = 1.0,
                     .jump_cpi = 0.25,
                     .l1i_miss_penalty = 10.0,
                     .corun_miss_penalty = 18.0,
                     .smt_cpi_inflation = 2.0};
  const SimResult s = sim_with(1000, 20);
  const double corun = corun_cycles(s, 1000, 0.5, p);
  // Compute CPI inflates by the SMT factor; misses cost the (higher) co-run
  // penalty reflecting shared-L2 contention.
  EXPECT_DOUBLE_EQ(corun, 1000 * 1.5 * 2.0 + 20 * 18.0);
  EXPECT_GT(corun, solo_cycles(s, 0.5, p));
}

TEST(PerfModel, CorunScalesToFullInstructionCount) {
  // The sim covered half the program (wrapped peer measurement); rates are
  // per-instruction so doubling the instruction count doubles cycles.
  const SimResult s = sim_with(500, 10);
  const double half = corun_cycles(s, 500, 0.5);
  const double full = corun_cycles(s, 1000, 0.5);
  EXPECT_NEAR(full, 2 * half, 1e-9);
}

TEST(PerfModel, SpeedupDefinition) {
  EXPECT_DOUBLE_EQ(speedup(104.0, 100.0), 1.04);
  EXPECT_THROW(speedup(0.0, 1.0), ContractError);
}

TEST(Throughput, IdenticalProgramsGainFromOverlap) {
  // Two programs of 100 solo cycles each; SMT inflates each to 150.
  const ThroughputResult r = corun_throughput(100, 150, 100, 150);
  EXPECT_DOUBLE_EQ(r.serial_cycles, 200.0);
  // They finish together at 150: 25% faster than serial.
  EXPECT_DOUBLE_EQ(r.corun_cycles, 150.0);
  EXPECT_DOUBLE_EQ(r.improvement(), 0.25);
}

TEST(Throughput, SurvivorFinishesAtSoloSpeed) {
  // Program 1: 100 solo / 150 corun. Program 2: 300 solo / 450 corun.
  // P1 finishes at 150; P2 has 1 - 150/450 = 2/3 of work left, at solo
  // speed that is 200 cycles: total 350 < serial 400.
  const ThroughputResult r = corun_throughput(100, 150, 300, 450);
  EXPECT_DOUBLE_EQ(r.corun_cycles, 350.0);
  EXPECT_NEAR(r.improvement(), 0.125, 1e-12);
}

TEST(Throughput, OrderOfArgumentsIrrelevant) {
  const ThroughputResult a = corun_throughput(100, 150, 300, 450);
  const ThroughputResult b = corun_throughput(300, 450, 100, 150);
  EXPECT_DOUBLE_EQ(a.corun_cycles, b.corun_cycles);
  EXPECT_DOUBLE_EQ(a.serial_cycles, b.serial_cycles);
}

TEST(Throughput, HeavySlowdownCanLoseToSerial) {
  // Pathological contention: co-run 3x slower than solo — worse than serial.
  const ThroughputResult r = corun_throughput(100, 300, 100, 300);
  EXPECT_LT(r.improvement(), 0.0);
}

TEST(Throughput, RejectsNonPositiveCycles) {
  EXPECT_THROW(corun_throughput(0, 1, 1, 1), ContractError);
  EXPECT_THROW(corun_throughput(1, 1, 1, -2), ContractError);
}

}  // namespace
}  // namespace codelayout
