# Empty dependencies file for corun_many_test.
# This may be replaced when dependencies are built.
