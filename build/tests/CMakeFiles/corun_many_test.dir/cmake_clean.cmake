file(REMOVE_RECURSE
  "CMakeFiles/corun_many_test.dir/corun_many_test.cpp.o"
  "CMakeFiles/corun_many_test.dir/corun_many_test.cpp.o.d"
  "corun_many_test"
  "corun_many_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corun_many_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
