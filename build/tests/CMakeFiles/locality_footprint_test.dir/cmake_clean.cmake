file(REMOVE_RECURSE
  "CMakeFiles/locality_footprint_test.dir/locality_footprint_test.cpp.o"
  "CMakeFiles/locality_footprint_test.dir/locality_footprint_test.cpp.o.d"
  "locality_footprint_test"
  "locality_footprint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locality_footprint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
