# Empty dependencies file for locality_footprint_test.
# This may be replaced when dependencies are built.
