# Empty compiler generated dependencies file for locality_reuse_test.
# This may be replaced when dependencies are built.
