file(REMOVE_RECURSE
  "CMakeFiles/locality_reuse_test.dir/locality_reuse_test.cpp.o"
  "CMakeFiles/locality_reuse_test.dir/locality_reuse_test.cpp.o.d"
  "locality_reuse_test"
  "locality_reuse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locality_reuse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
