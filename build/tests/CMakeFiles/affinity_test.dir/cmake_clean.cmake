file(REMOVE_RECURSE
  "CMakeFiles/affinity_test.dir/affinity_test.cpp.o"
  "CMakeFiles/affinity_test.dir/affinity_test.cpp.o.d"
  "affinity_test"
  "affinity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affinity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
