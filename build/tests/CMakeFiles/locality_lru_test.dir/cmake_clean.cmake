file(REMOVE_RECURSE
  "CMakeFiles/locality_lru_test.dir/locality_lru_test.cpp.o"
  "CMakeFiles/locality_lru_test.dir/locality_lru_test.cpp.o.d"
  "locality_lru_test"
  "locality_lru_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locality_lru_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
