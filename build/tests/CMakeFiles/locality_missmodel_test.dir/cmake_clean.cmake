file(REMOVE_RECURSE
  "CMakeFiles/locality_missmodel_test.dir/locality_missmodel_test.cpp.o"
  "CMakeFiles/locality_missmodel_test.dir/locality_missmodel_test.cpp.o.d"
  "locality_missmodel_test"
  "locality_missmodel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locality_missmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
