# Empty compiler generated dependencies file for locality_missmodel_test.
# This may be replaced when dependencies are built.
