# Empty compiler generated dependencies file for trg_test.
# This may be replaced when dependencies are built.
