file(REMOVE_RECURSE
  "CMakeFiles/trg_test.dir/trg_test.cpp.o"
  "CMakeFiles/trg_test.dir/trg_test.cpp.o.d"
  "trg_test"
  "trg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
