file(REMOVE_RECURSE
  "CMakeFiles/codelayout_perfmodel.dir/perfmodel/perfmodel.cpp.o"
  "CMakeFiles/codelayout_perfmodel.dir/perfmodel/perfmodel.cpp.o.d"
  "libcodelayout_perfmodel.a"
  "libcodelayout_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codelayout_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
