file(REMOVE_RECURSE
  "libcodelayout_perfmodel.a"
)
