# Empty compiler generated dependencies file for codelayout_perfmodel.
# This may be replaced when dependencies are built.
