file(REMOVE_RECURSE
  "libcodelayout_cache.a"
)
