# Empty compiler generated dependencies file for codelayout_cache.
# This may be replaced when dependencies are built.
