file(REMOVE_RECURSE
  "CMakeFiles/codelayout_cache.dir/cache/icache_sim.cpp.o"
  "CMakeFiles/codelayout_cache.dir/cache/icache_sim.cpp.o.d"
  "CMakeFiles/codelayout_cache.dir/cache/set_assoc.cpp.o"
  "CMakeFiles/codelayout_cache.dir/cache/set_assoc.cpp.o.d"
  "libcodelayout_cache.a"
  "libcodelayout_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codelayout_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
