file(REMOVE_RECURSE
  "libcodelayout_locality.a"
)
