
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/locality/footprint.cpp" "src/CMakeFiles/codelayout_locality.dir/locality/footprint.cpp.o" "gcc" "src/CMakeFiles/codelayout_locality.dir/locality/footprint.cpp.o.d"
  "/root/repo/src/locality/lru_stack.cpp" "src/CMakeFiles/codelayout_locality.dir/locality/lru_stack.cpp.o" "gcc" "src/CMakeFiles/codelayout_locality.dir/locality/lru_stack.cpp.o.d"
  "/root/repo/src/locality/missmodel.cpp" "src/CMakeFiles/codelayout_locality.dir/locality/missmodel.cpp.o" "gcc" "src/CMakeFiles/codelayout_locality.dir/locality/missmodel.cpp.o.d"
  "/root/repo/src/locality/reuse.cpp" "src/CMakeFiles/codelayout_locality.dir/locality/reuse.cpp.o" "gcc" "src/CMakeFiles/codelayout_locality.dir/locality/reuse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/codelayout_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/codelayout_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/codelayout_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
