file(REMOVE_RECURSE
  "CMakeFiles/codelayout_locality.dir/locality/footprint.cpp.o"
  "CMakeFiles/codelayout_locality.dir/locality/footprint.cpp.o.d"
  "CMakeFiles/codelayout_locality.dir/locality/lru_stack.cpp.o"
  "CMakeFiles/codelayout_locality.dir/locality/lru_stack.cpp.o.d"
  "CMakeFiles/codelayout_locality.dir/locality/missmodel.cpp.o"
  "CMakeFiles/codelayout_locality.dir/locality/missmodel.cpp.o.d"
  "CMakeFiles/codelayout_locality.dir/locality/reuse.cpp.o"
  "CMakeFiles/codelayout_locality.dir/locality/reuse.cpp.o.d"
  "libcodelayout_locality.a"
  "libcodelayout_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codelayout_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
