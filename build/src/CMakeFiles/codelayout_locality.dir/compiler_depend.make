# Empty compiler generated dependencies file for codelayout_locality.
# This may be replaced when dependencies are built.
