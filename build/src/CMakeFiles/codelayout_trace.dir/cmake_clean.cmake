file(REMOVE_RECURSE
  "CMakeFiles/codelayout_trace.dir/trace/io.cpp.o"
  "CMakeFiles/codelayout_trace.dir/trace/io.cpp.o.d"
  "CMakeFiles/codelayout_trace.dir/trace/prune.cpp.o"
  "CMakeFiles/codelayout_trace.dir/trace/prune.cpp.o.d"
  "CMakeFiles/codelayout_trace.dir/trace/trace.cpp.o"
  "CMakeFiles/codelayout_trace.dir/trace/trace.cpp.o.d"
  "libcodelayout_trace.a"
  "libcodelayout_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codelayout_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
