# Empty compiler generated dependencies file for codelayout_trace.
# This may be replaced when dependencies are built.
