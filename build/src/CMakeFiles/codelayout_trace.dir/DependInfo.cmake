
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/io.cpp" "src/CMakeFiles/codelayout_trace.dir/trace/io.cpp.o" "gcc" "src/CMakeFiles/codelayout_trace.dir/trace/io.cpp.o.d"
  "/root/repo/src/trace/prune.cpp" "src/CMakeFiles/codelayout_trace.dir/trace/prune.cpp.o" "gcc" "src/CMakeFiles/codelayout_trace.dir/trace/prune.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/codelayout_trace.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/codelayout_trace.dir/trace/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/codelayout_support.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/codelayout_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
