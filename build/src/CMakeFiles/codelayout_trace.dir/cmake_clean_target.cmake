file(REMOVE_RECURSE
  "libcodelayout_trace.a"
)
