file(REMOVE_RECURSE
  "CMakeFiles/codelayout_harness.dir/harness/experiments.cpp.o"
  "CMakeFiles/codelayout_harness.dir/harness/experiments.cpp.o.d"
  "CMakeFiles/codelayout_harness.dir/harness/lab.cpp.o"
  "CMakeFiles/codelayout_harness.dir/harness/lab.cpp.o.d"
  "CMakeFiles/codelayout_harness.dir/harness/pipeline.cpp.o"
  "CMakeFiles/codelayout_harness.dir/harness/pipeline.cpp.o.d"
  "libcodelayout_harness.a"
  "libcodelayout_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codelayout_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
