file(REMOVE_RECURSE
  "libcodelayout_harness.a"
)
