# Empty compiler generated dependencies file for codelayout_harness.
# This may be replaced when dependencies are built.
