file(REMOVE_RECURSE
  "CMakeFiles/codelayout_affinity.dir/affinity/analysis.cpp.o"
  "CMakeFiles/codelayout_affinity.dir/affinity/analysis.cpp.o.d"
  "CMakeFiles/codelayout_affinity.dir/affinity/hierarchy.cpp.o"
  "CMakeFiles/codelayout_affinity.dir/affinity/hierarchy.cpp.o.d"
  "CMakeFiles/codelayout_affinity.dir/affinity/hierarchy_builder.cpp.o"
  "CMakeFiles/codelayout_affinity.dir/affinity/hierarchy_builder.cpp.o.d"
  "CMakeFiles/codelayout_affinity.dir/affinity/naive.cpp.o"
  "CMakeFiles/codelayout_affinity.dir/affinity/naive.cpp.o.d"
  "libcodelayout_affinity.a"
  "libcodelayout_affinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codelayout_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
