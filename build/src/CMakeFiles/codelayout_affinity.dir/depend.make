# Empty dependencies file for codelayout_affinity.
# This may be replaced when dependencies are built.
