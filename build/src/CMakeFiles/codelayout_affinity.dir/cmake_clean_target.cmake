file(REMOVE_RECURSE
  "libcodelayout_affinity.a"
)
