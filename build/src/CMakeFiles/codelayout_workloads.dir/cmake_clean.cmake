file(REMOVE_RECURSE
  "CMakeFiles/codelayout_workloads.dir/workloads/generator.cpp.o"
  "CMakeFiles/codelayout_workloads.dir/workloads/generator.cpp.o.d"
  "CMakeFiles/codelayout_workloads.dir/workloads/suite.cpp.o"
  "CMakeFiles/codelayout_workloads.dir/workloads/suite.cpp.o.d"
  "libcodelayout_workloads.a"
  "libcodelayout_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codelayout_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
