# Empty compiler generated dependencies file for codelayout_workloads.
# This may be replaced when dependencies are built.
