file(REMOVE_RECURSE
  "libcodelayout_workloads.a"
)
