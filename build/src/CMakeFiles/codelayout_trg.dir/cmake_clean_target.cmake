file(REMOVE_RECURSE
  "libcodelayout_trg.a"
)
