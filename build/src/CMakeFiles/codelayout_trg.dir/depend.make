# Empty dependencies file for codelayout_trg.
# This may be replaced when dependencies are built.
