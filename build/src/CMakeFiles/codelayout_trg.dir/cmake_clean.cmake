file(REMOVE_RECURSE
  "CMakeFiles/codelayout_trg.dir/trg/graph.cpp.o"
  "CMakeFiles/codelayout_trg.dir/trg/graph.cpp.o.d"
  "CMakeFiles/codelayout_trg.dir/trg/placement.cpp.o"
  "CMakeFiles/codelayout_trg.dir/trg/placement.cpp.o.d"
  "CMakeFiles/codelayout_trg.dir/trg/reduction.cpp.o"
  "CMakeFiles/codelayout_trg.dir/trg/reduction.cpp.o.d"
  "libcodelayout_trg.a"
  "libcodelayout_trg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codelayout_trg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
