file(REMOVE_RECURSE
  "libcodelayout_ir.a"
)
