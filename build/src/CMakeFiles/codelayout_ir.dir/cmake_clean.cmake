file(REMOVE_RECURSE
  "CMakeFiles/codelayout_ir.dir/ir/builder.cpp.o"
  "CMakeFiles/codelayout_ir.dir/ir/builder.cpp.o.d"
  "CMakeFiles/codelayout_ir.dir/ir/module.cpp.o"
  "CMakeFiles/codelayout_ir.dir/ir/module.cpp.o.d"
  "libcodelayout_ir.a"
  "libcodelayout_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codelayout_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
