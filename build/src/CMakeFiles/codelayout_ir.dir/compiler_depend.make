# Empty compiler generated dependencies file for codelayout_ir.
# This may be replaced when dependencies are built.
