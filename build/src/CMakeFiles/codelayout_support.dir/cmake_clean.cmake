file(REMOVE_RECURSE
  "CMakeFiles/codelayout_support.dir/support/format.cpp.o"
  "CMakeFiles/codelayout_support.dir/support/format.cpp.o.d"
  "CMakeFiles/codelayout_support.dir/support/rng.cpp.o"
  "CMakeFiles/codelayout_support.dir/support/rng.cpp.o.d"
  "CMakeFiles/codelayout_support.dir/support/stats.cpp.o"
  "CMakeFiles/codelayout_support.dir/support/stats.cpp.o.d"
  "libcodelayout_support.a"
  "libcodelayout_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codelayout_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
