file(REMOVE_RECURSE
  "libcodelayout_support.a"
)
