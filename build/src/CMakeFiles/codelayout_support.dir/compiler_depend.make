# Empty compiler generated dependencies file for codelayout_support.
# This may be replaced when dependencies are built.
