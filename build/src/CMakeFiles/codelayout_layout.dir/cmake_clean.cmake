file(REMOVE_RECURSE
  "CMakeFiles/codelayout_layout.dir/layout/layout.cpp.o"
  "CMakeFiles/codelayout_layout.dir/layout/layout.cpp.o.d"
  "libcodelayout_layout.a"
  "libcodelayout_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codelayout_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
