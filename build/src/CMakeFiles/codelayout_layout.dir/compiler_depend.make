# Empty compiler generated dependencies file for codelayout_layout.
# This may be replaced when dependencies are built.
