file(REMOVE_RECURSE
  "libcodelayout_layout.a"
)
