file(REMOVE_RECURSE
  "CMakeFiles/codelayout_exec.dir/exec/interpreter.cpp.o"
  "CMakeFiles/codelayout_exec.dir/exec/interpreter.cpp.o.d"
  "libcodelayout_exec.a"
  "libcodelayout_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codelayout_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
