# Empty compiler generated dependencies file for codelayout_exec.
# This may be replaced when dependencies are built.
