file(REMOVE_RECURSE
  "libcodelayout_exec.a"
)
