# Empty dependencies file for bench_ext_multiprogram.
# This may be replaced when dependencies are built.
