file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multiprogram.dir/bench_ext_multiprogram.cpp.o"
  "CMakeFiles/bench_ext_multiprogram.dir/bench_ext_multiprogram.cpp.o.d"
  "bench_ext_multiprogram"
  "bench_ext_multiprogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multiprogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
