# Empty compiler generated dependencies file for bench_fig6_corun_speedup.
# This may be replaced when dependencies are built.
