file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_corun_avg.dir/bench_table2_corun_avg.cpp.o"
  "CMakeFiles/bench_table2_corun_avg.dir/bench_table2_corun_avg.cpp.o.d"
  "bench_table2_corun_avg"
  "bench_table2_corun_avg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_corun_avg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
