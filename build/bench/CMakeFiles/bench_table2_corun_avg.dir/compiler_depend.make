# Empty compiler generated dependencies file for bench_table2_corun_avg.
# This may be replaced when dependencies are built.
