# Empty dependencies file for bench_ablation_windows.
# This may be replaced when dependencies are built.
