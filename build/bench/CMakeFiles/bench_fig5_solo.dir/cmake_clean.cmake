file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_solo.dir/bench_fig5_solo.cpp.o"
  "CMakeFiles/bench_fig5_solo.dir/bench_fig5_solo.cpp.o.d"
  "bench_fig5_solo"
  "bench_fig5_solo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_solo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
