# Empty dependencies file for bench_fig5_solo.
# This may be replaced when dependencies are built.
