# Empty dependencies file for bench_sec3f_defensive_polite.
# This may be replaced when dependencies are built.
