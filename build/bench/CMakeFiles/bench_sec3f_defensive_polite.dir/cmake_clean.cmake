file(REMOVE_RECURSE
  "CMakeFiles/bench_sec3f_defensive_polite.dir/bench_sec3f_defensive_polite.cpp.o"
  "CMakeFiles/bench_sec3f_defensive_polite.dir/bench_sec3f_defensive_polite.cpp.o.d"
  "bench_sec3f_defensive_polite"
  "bench_sec3f_defensive_polite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec3f_defensive_polite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
