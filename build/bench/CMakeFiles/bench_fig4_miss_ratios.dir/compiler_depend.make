# Empty compiler generated dependencies file for bench_fig4_miss_ratios.
# This may be replaced when dependencies are built.
