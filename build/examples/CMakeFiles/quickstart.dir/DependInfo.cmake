
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/codelayout_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/codelayout_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/codelayout_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/codelayout_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/codelayout_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/codelayout_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/codelayout_affinity.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/codelayout_trg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/codelayout_locality.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/codelayout_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/codelayout_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/codelayout_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
