# Empty dependencies file for suite_survey.
# This may be replaced when dependencies are built.
