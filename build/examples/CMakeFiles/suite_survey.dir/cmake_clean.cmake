file(REMOVE_RECURSE
  "CMakeFiles/suite_survey.dir/suite_survey.cpp.o"
  "CMakeFiles/suite_survey.dir/suite_survey.cpp.o.d"
  "suite_survey"
  "suite_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
