file(REMOVE_RECURSE
  "CMakeFiles/defensiveness_politeness.dir/defensiveness_politeness.cpp.o"
  "CMakeFiles/defensiveness_politeness.dir/defensiveness_politeness.cpp.o.d"
  "defensiveness_politeness"
  "defensiveness_politeness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defensiveness_politeness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
