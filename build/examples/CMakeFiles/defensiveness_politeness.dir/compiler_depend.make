# Empty compiler generated dependencies file for defensiveness_politeness.
# This may be replaced when dependencies are built.
